#include "sbmp/sched/slot_filler.h"

#include <cassert>

#include "sbmp/support/diagnostics.h"

namespace sbmp {

SlotFiller::SlotFiller(const TacFunction& tac, const Dfg& dfg,
                       const MachineConfig& config)
    : tac_(tac), dfg_(dfg), config_(config) {
  sched_.slot_of.assign(static_cast<std::size_t>(tac.size()) + 1, -1);
}

bool SlotFiller::counts_for_issue(int id) const {
  return config_.sync_consumes_slot || !tac_.by_id(id).is_sync();
}

int SlotFiller::ready_slot(int id) const {
  return ready_slot_ignoring(id, 0);
}

int SlotFiller::ready_slot_ignoring(int id, int ignored_pred) const {
  int ready = 0;
  for (const auto& e : dfg_.preds(id)) {
    if (e.from == ignored_pred) continue;
    const int from_slot = slot(e.from);
    if (from_slot < 0) return -1;
    if (from_slot + e.latency > ready) ready = from_slot + e.latency;
  }
  return ready;
}

int SlotFiller::latest_free_slot_before(int id, int limit) const {
  for (int s = limit - 1; s >= 0; --s) {
    if (capacity_ok(s, id)) return s;
  }
  return -1;
}

bool SlotFiller::capacity_ok(int slot, int id) const {
  if (slot >= sched_.length()) return true;
  const auto s = static_cast<std::size_t>(slot);
  if (counts_for_issue(id) && issue_used_[s] >= config_.issue_width)
    return false;
  const FuClass fu = tac_.by_id(id).fu();
  if (fu != FuClass::kNone &&
      fu_used_[s][static_cast<std::size_t>(fu)] >= config_.fu_count(fu))
    return false;
  return true;
}

void SlotFiller::ensure_slot(int slot) {
  while (sched_.length() <= slot) {
    sched_.groups.emplace_back();
    issue_used_.push_back(0);
    fu_used_.push_back({});
  }
}

int SlotFiller::place_earliest(int id, int min_slot) {
  const int ready = ready_slot(id);
  assert(ready >= 0 && "predecessors must be placed first");
  int s = ready > min_slot ? ready : min_slot;
  while (!capacity_ok(s, id)) ++s;
  place_at(id, s);
  return s;
}

void SlotFiller::place_at(int id, int slot) {
  assert(!placed(id));
  ensure_slot(slot);
  const auto s = static_cast<std::size_t>(slot);
  sched_.groups[s].push_back(id);
  sched_.slot_of[static_cast<std::size_t>(id)] = slot;
  if (counts_for_issue(id)) ++issue_used_[s];
  const FuClass fu = tac_.by_id(id).fu();
  if (fu != FuClass::kNone) ++fu_used_[s][static_cast<std::size_t>(fu)];
  ++num_placed_;
}

void SlotFiller::place_ancestors_asap(int id) {
  for (const auto& e : dfg_.preds(id)) {
    if (!placed(e.from)) {
      place_ancestors_asap(e.from);
      place_earliest(e.from, 0);
    }
  }
}

Schedule SlotFiller::take() {
  if (num_placed_ != tac_.size())
    throw SbmpError("scheduler left instructions unplaced: " +
                    std::to_string(num_placed_) + " of " +
                    std::to_string(tac_.size()));
  return std::move(sched_);
}

}  // namespace sbmp
