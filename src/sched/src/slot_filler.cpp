#include "sbmp/sched/slot_filler.h"

#include <bit>
#include <cassert>

#include "sbmp/support/diagnostics.h"

namespace sbmp {

std::vector<std::unique_ptr<SlotFiller::Scratch>>& SlotFiller::pool() {
  thread_local std::vector<std::unique_ptr<Scratch>> parked;
  return parked;
}

SlotFiller::SlotFiller(const TacFunction& tac, const Dfg& dfg,
                       const MachineDesc& config, bool materialize)
    : tac_(tac), dfg_(dfg), config_(config), materialize_(materialize) {
  auto& parked = pool();
  if (parked.empty()) {
    scratch_ = std::make_unique<Scratch>();
  } else {
    scratch_ = std::move(parked.back());
    parked.pop_back();
    // clear() keeps the heap blocks — that retention is the point.
    scratch_->issue_used.clear();
    scratch_->fu_used.clear();
    scratch_->full.clear();
  }
  sched_.slot_of.assign(static_cast<std::size_t>(tac.size()) + 1, -1);
}

SlotFiller::~SlotFiller() {
  if (scratch_ != nullptr) pool().push_back(std::move(scratch_));
}

bool SlotFiller::counts_for_issue(int id) const {
  return config_.sync_consumes_slot || !tac_.by_id(id).is_sync();
}

int SlotFiller::ready_slot(int id) const {
  return ready_slot_ignoring(id, 0);
}

int SlotFiller::ready_slot_ignoring(int id, int ignored_pred) const {
  int ready = 0;
  for (const auto& e : dfg_.preds(id)) {
    if (e.from == ignored_pred) continue;
    const int from_slot = slot(e.from);
    if (from_slot < 0) return -1;
    if (from_slot + e.latency > ready) ready = from_slot + e.latency;
  }
  return ready;
}

int SlotFiller::latest_free_slot_before(int id, int limit) const {
  if (limit <= 0) return -1;
  // Slots at or beyond the current length are always free.
  if (limit > length()) return limit - 1;
  const bool issue = counts_for_issue(id);
  const FuClass fu = tac_.by_id(id).fu();
  const int fu_lane =
      fu == FuClass::kNone ? -1 : 1 + static_cast<int>(fu);
  int w = (limit - 1) / 64;
  std::uint64_t mask = ~std::uint64_t{0} >> (63 - (limit - 1) % 64);
  for (; w >= 0; --w, mask = ~std::uint64_t{0}) {
    const std::size_t base = static_cast<std::size_t>(w) * kFullStride;
    std::uint64_t bad = 0;
    if (issue) bad |= scratch_->full[base];
    if (fu_lane >= 0) bad |= scratch_->full[base + static_cast<std::size_t>(fu_lane)];
    const std::uint64_t free_bits = ~bad & mask;
    if (free_bits != 0) return w * 64 + 63 - std::countl_zero(free_bits);
  }
  return -1;
}

int SlotFiller::first_free_at_or_after(int id, int start) const {
  const int len = length();
  if (start >= len) return start;
  const bool issue = counts_for_issue(id);
  const FuClass fu = tac_.by_id(id).fu();
  const int fu_lane =
      fu == FuClass::kNone ? -1 : 1 + static_cast<int>(fu);
  int w = start / 64;
  const int last_w = (len - 1) / 64;
  std::uint64_t mask = ~std::uint64_t{0} << (start % 64);
  for (; w <= last_w; ++w, mask = ~std::uint64_t{0}) {
    const std::size_t base = static_cast<std::size_t>(w) * kFullStride;
    std::uint64_t bad = 0;
    if (issue) bad |= scratch_->full[base];
    if (fu_lane >= 0) bad |= scratch_->full[base + static_cast<std::size_t>(fu_lane)];
    // Bits past the current length are never marked, so the first free
    // bit found here is at most `len` — exactly the append slot the
    // linear scan would have reached.
    const std::uint64_t free_bits = ~bad & mask;
    if (free_bits != 0) return w * 64 + std::countr_zero(free_bits);
  }
  return len;
}

bool SlotFiller::capacity_ok(int slot, int id) const {
  if (slot >= length()) return true;
  const auto s = static_cast<std::size_t>(slot);
  if (counts_for_issue(id) && scratch_->issue_used[s] >= config_.issue_width)
    return false;
  const FuClass fu = tac_.by_id(id).fu();
  if (fu != FuClass::kNone &&
      scratch_->fu_used[s][static_cast<std::size_t>(fu)] >= config_.fu_count(fu))
    return false;
  return true;
}

void SlotFiller::ensure_slot(int slot) {
  while (length() <= slot) {
    const int s = length();
    if (materialize_) {
      sched_.groups.emplace_back();
    } else {
      ++virtual_len_;
    }
    scratch_->issue_used.push_back(0);
    scratch_->fu_used.push_back({});
    const auto words_needed =
        static_cast<std::size_t>(s / 64 + 1) * kFullStride;
    if (scratch_->full.size() < words_needed) scratch_->full.resize(words_needed, 0);
    // Zero-capacity lanes are saturated from birth.
    if (config_.issue_width <= 0) mark_full(s, 0);
    for (int f = 0; f < kNumFuClasses; ++f) {
      if (config_.fu_count(static_cast<FuClass>(f)) <= 0)
        mark_full(s, 1 + f);
    }
  }
}

int SlotFiller::place_earliest(int id, int min_slot) {
  const int ready = ready_slot(id);
  assert(ready >= 0 && "predecessors must be placed first");
  const int s =
      first_free_at_or_after(id, ready > min_slot ? ready : min_slot);
  place_at(id, s);
  return s;
}

void SlotFiller::place_at(int id, int slot) {
  assert(!placed(id));
  ensure_slot(slot);
  const auto s = static_cast<std::size_t>(slot);
  if (materialize_) sched_.groups[s].push_back(id);
  sched_.slot_of[static_cast<std::size_t>(id)] = slot;
  if (counts_for_issue(id)) {
    if (++scratch_->issue_used[s] >= config_.issue_width) mark_full(slot, 0);
  }
  const FuClass fu = tac_.by_id(id).fu();
  if (fu != FuClass::kNone) {
    if (++scratch_->fu_used[s][static_cast<std::size_t>(fu)] >= config_.fu_count(fu))
      mark_full(slot, 1 + static_cast<int>(fu));
  }
  ++num_placed_;
}

void SlotFiller::place_ancestors_asap(int id) {
  for (const auto& e : dfg_.preds(id)) {
    if (!placed(e.from)) {
      place_ancestors_asap(e.from);
      place_earliest(e.from, 0);
    }
  }
}

Schedule SlotFiller::take() {
  if (num_placed_ != tac_.size())
    throw SbmpError("scheduler left instructions unplaced: " +
                    std::to_string(num_placed_) + " of " +
                    std::to_string(tac_.size()));
  if (!materialize_)
    throw SbmpError("take() on a slots-only SlotFiller: the group lists "
                    "were never built; use take_slots()");
  return std::move(sched_);
}

int SlotFiller::take_slots(std::vector<int>& slot_of) {
  if (num_placed_ != tac_.size())
    throw SbmpError("scheduler left instructions unplaced: " +
                    std::to_string(num_placed_) + " of " +
                    std::to_string(tac_.size()));
  // assign (not swap) so the caller's retained capacity keeps absorbing
  // these copies across calls.
  slot_of.assign(sched_.slot_of.begin(), sched_.slot_of.end());
  return length();
}

}  // namespace sbmp
