#include "sbmp/sched/schedule.h"

namespace sbmp {

std::string Schedule::to_string(const TacFunction& tac,
                                int issue_width) const {
  std::string out;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::string row = "(";
    std::string annot;
    for (int lane = 0; lane < issue_width; ++lane) {
      if (lane > 0) row += ", ";
      if (lane < static_cast<int>(groups[g].size())) {
        const int id = groups[g][static_cast<std::size_t>(lane)];
        row += std::to_string(id);
        const auto& instr = tac.by_id(id);
        if (instr.is_sync()) {
          if (!annot.empty()) annot += ", ";
          annot += tac.instr_to_string(instr);
        }
      } else {
        row += "-";
      }
    }
    row += ")";
    if (!annot.empty()) row += "   " + annot;
    out += row + "\n";
  }
  return out;
}

}  // namespace sbmp
