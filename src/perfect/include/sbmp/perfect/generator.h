#pragma once

#include <cstdint>

#include "sbmp/ir/loop.h"
#include "sbmp/support/rng.h"

namespace sbmp {

/// Parameters of the random DOACROSS loop generator used by the property
/// tests and the scaling benches.
struct LoopGenConfig {
  int min_stmts = 2;
  int max_stmts = 8;
  /// Max |offset| of a subscript relative to the induction variable.
  int max_offset = 3;
  /// Max dependence distance produced (clamped to trip-1).
  int max_distance = 3;
  /// Percent chance that an RHS leaf reads an array written by another
  /// statement of the loop at an earlier iteration (creating a carried
  /// flow dependence).
  int carried_read_percent = 35;
  /// Of those, percent chance the read targets this or a later statement
  /// (making the dependence lexically backward).
  int lbd_percent = 70;
  /// Percent chance of a carried anti dependence leaf (reads an element
  /// a later iteration overwrites).
  int anti_percent = 10;
  /// RHS expression leaves (2..N).
  int max_leaves = 4;
  std::int64_t trip = 100;
  /// Guarantee at least one loop-carried dependence (a DOACROSS loop).
  bool ensure_doacross = true;
};

/// Generates a random single loop. Every statement writes its own array
/// at subscript [i], so dependence distances are exactly the subscript
/// offsets of the reads, and the generator can steer LFD/LBD mix and
/// distances precisely. Deterministic in `rng`.
[[nodiscard]] Loop generate_random_loop(SplitMix64& rng,
                                        const LoopGenConfig& config);

}  // namespace sbmp
