#include "sbmp/perfect/suite.h"

#include <algorithm>

#include "sbmp/codegen/codegen.h"
#include "sbmp/dep/dependence.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/support/diagnostics.h"
#include "sbmp/support/strings.h"
#include "sbmp/sync/sync.h"

namespace sbmp {

Program PerfectBenchmark::program() const {
  return parse_program_or_throw(source);
}

namespace {

// ---------------------------------------------------------------------
// FLQ52 — transonic-flow solver stand-in. All loop-carried dependences
// are lexically backward (the paper reports FLQ52 as all-LBD): every
// DOACROSS loop feeds early consumer statements from arrays written at
// the end of the body. Most backward pairs sit in separate Wat graphs,
// so the technique converts them to LFD — the large improvement bucket.
// ---------------------------------------------------------------------
const char* kFlq52 = R"(
# FLQ52: transonic flow, relaxation sweeps over the pressure field.
# Each sweep feeds gate statements (Wat graphs, convertible to LFD) from
# a field array written at the end of a serial spine; some sweeps carry
# an independent short recurrence whose Sigwat path survives as the only
# LBD after scheduling.
loop flq52_relax_p
doacross I = 1, 100
  G1[I] = P[I-1] * w1 + F1[I+1]
  G2[I] = P[I-2] / w2 - F2[I-1]
  PP[I] = PP[I-3] * a7 + F9[I]
  T1[I] = F3[I] * a1 + F4[I+1]
  T2[I] = T1[I] * a2 - F5[I-2]
  T3[I] = T2[I] / a3 + F6[I+2]
  T4[I] = T3[I] * a4 + F7[I-1]
  P[I]  = T4[I] * a5 + F8[I]
end

loop flq52_relax_q
doacross I = 1, 100
  H1[I] = Q[I-1] + E1[I] * b1
  H2[I] = Q[I-3] * b2 + E2[I+1]
  H3[I] = Q[I-2] - E3[I-1] / b3
  QQ[I] = QQ[I-4] + E9[I] * b8
  U1[I] = E4[I] * b4 + E5[I+2]
  U2[I] = U1[I] - E6[I] * b5
  U3[I] = U2[I] * b6 + E7[I-2]
  Q[I]  = U3[I] + E8[I+1] * b7
end

loop flq52_flux
doacross I = 1, 100
  R1[I] = S[I-1] * c1 - D1[I]
  V1[I] = D2[I] + D3[I+1] * c2
  V2[I] = V1[I] * c3 + D4[I-1]
  V3[I] = V2[I] - D5[I+2] / c4
  V4[I] = V3[I] * c5 + D6[I]
  V5[I] = V4[I] + D7[I-2] * c6
  S[I]  = V5[I] * c7 - D8[I+1]
end

loop flq52_correct
doacross I = 1, 100
  K1[I] = W[I-2] + M1[I] * d1
  K2[I] = W[I-1] * d2 - M2[I+1]
  WW[I] = WW[I-3] + M7[I] * d7
  L1[I] = M3[I] * d3 + M4[I-1]
  L2[I] = L1[I] / d4 + M5[I+2]
  L3[I] = L2[I] * d5 - M6[I]
  W[I]  = L3[I] + M8[I] * d6
end

loop flq52_residual
doacross I = 1, 100
  RA[I] = RS[I-1] + N8[I] * e5
  RB[I] = RS[I-3] * e6 - N9[I+1]
  Y1[I] = N8[I+2] * e7 + N9[I]
  Y2[I] = Y1[I] - N8[I-2] / e8
  Y3[I] = Y2[I] * e9 + N9[I+3]
  RS[I] = Y3[I] + N9[I-1] * e0
end

loop flq52_farfield
doacross I = 1, 100
  FA[I] = FF[I-2] * f1 + O1[I]
  FB[I] = FF[I-1] - O2[I+1] * f2
  X1[I] = O3[I] / f3 + O4[I-2]
  X2[I] = X1[I] * f4 - O5[I+1]
  X3[I] = X2[I] + O6[I] * f5
  X4[I] = X3[I] * f6 + O7[I-1]
  FF[I] = X4[I] - O8[I+2] / f7
end

# Smoothing passes with no loop-carried dependence (Doall).
loop flq52_smooth
do I = 1, 100
  Z1[I] = N1[I] * e1 + N2[I+1]
  Z2[I] = N3[I-1] - N4[I] / e2
end

loop flq52_scale
do I = 1, 100
  Z3[I] = N5[I] * e3
  Z4[I] = N6[I] + N7[I] * e4
end
)";

// ---------------------------------------------------------------------
// QCD — lattice gauge stand-in. The paper reports QCD as all-LBD but
// with far smaller improvements than the other codes: its loops are
// dominated by serial recurrence chains, so the synchronization path
// spans nearly the whole body and the technique has little slack to
// exploit.
// ---------------------------------------------------------------------
const char* kQcd = R"(
# QCD: lattice link update, strongly serial recurrences; two gather
# loops with convertible backward pairs keep the average improvement in
# the paper's low-but-nonzero band.
loop qcd_link_update
doacross I = 1, 100
  A[I] = (A[I-1] * g1 + U1[I]) / g2
end

loop qcd_plaquette
doacross I = 1, 100
  P[I] = P[I-1] + V1[I] * h1
  Q[I] = Q[I-1] + P[I] * h2
end

loop qcd_staple
doacross I = 1, 100
  S[I] = S[I-1] + W1[I] - W2[I+1]
  T[I] = T[I-1] + S[I] * k3
end

loop qcd_gather
doacross I = 1, 100
  G1[I] = F[I-1] * m1 + Y1[I+1]
  G2[I] = Y2[I] * m2 + Y3[I-1]
  G3[I] = G2[I] - Y4[I+2] / m3
  F[I]  = G3[I] + Y5[I] * m4
end
)";

// ---------------------------------------------------------------------
// MDG — molecular dynamics stand-in. Mixed LFD/LBD; wide force-update
// bodies with short backward recurrences, so spans compress well.
// ---------------------------------------------------------------------
const char* kMdg = R"(
# MDG: water-molecule dynamics, force accumulation and integration.
loop mdg_forces
doacross I = 1, 100
  FX[I] = RX[I-1] * q1 + D1[I+1]
  FY[I] = RX[I-2] - D2[I] * q2
  W1[I] = D3[I] * q3 + D4[I+1]
  W2[I] = W1[I] - D5[I-1] / q4
  W3[I] = W2[I] * q5 + D6[I+2]
  W4[I] = W3[I] + D7[I] * q6
  W5[I] = W4[I] * q7 - D8[I-2]
  W6[I] = W5[I] / q9 + D5[I+3]
  W7[I] = W6[I] * q10 - D3[I-3]
  RX[I] = W7[I] + D9[I+1] * q8
end

loop mdg_integrate
doacross I = 1, 100
  V1[I] = X1[I] * r1 + X2[I+1]
  V2[I] = V1[I] - X3[I] * r2
  PX[I] = V2[I] + PX[I-4] * r3
  V3[I] = X4[I-1] * r4 + X5[I]
  V4[I] = V3[I] / r5 - X6[I+2]
  PY[I] = V4[I] + PX[I-1] * r6
end

# Forward pipeline: producers precede consumers (LFD pairs).
loop mdg_neighbors
doacross I = 1, 100
  NA[I] = Y1[I] * s1 + Y2[I-1]
  NB[I] = NA[I-2] + Y3[I] * s2
  NC[I] = NA[I-3] - NB[I-1] / s3
  ND[I] = Y4[I] * s4 + Y5[I+1]
end

loop mdg_bonds
doacross I = 1, 100
  BA[I] = BO[I-1] * p1 + G1[I]
  BB[I] = BO[I-3] - G2[I+1] * p2
  H1[I] = G3[I] * p3 + G4[I-2]
  H2[I] = H1[I] / p4 + G5[I+1]
  H3[I] = H2[I] * p5 - G6[I]
  H4[I] = H3[I] + G7[I-1] * p6
  BO[I] = H4[I] * p7 + G8[I+2]
end

loop mdg_kinetic
do I = 1, 100
  KE[I] = Z1[I] * Z1[I] + Z2[I] * Z2[I]
  TE[I] = KE[I] * t1 + Z3[I]
end

loop mdg_shift
do I = 1, 100
  SA[I] = Z4[I] + t2
  SB[I] = Z5[I] * t3 - Z6[I]
end
)";

// ---------------------------------------------------------------------
// TRACK — missile-tracking stand-in. All-LBD; filter loops whose
// backward dependences feed early gate computations from late state
// updates, mostly convertible Wat-graph pairs.
// ---------------------------------------------------------------------
const char* kTrack = R"(
# TRACK: target state estimation, gating and smoothing filters.
loop track_gate
doacross I = 1, 100
  GA[I] = ST[I-1] * u1 + O1[I]
  GB[I] = ST[I-2] - O2[I+1] * u2
  GC[I] = GC[I-3] * u8 + O9[I]
  M1[I] = O3[I] * u3 + O4[I-1]
  M2[I] = M1[I] - O5[I] / u4
  M3[I] = M2[I] * u5 + O6[I+2]
  M4[I] = M3[I] + O7[I-2] * u6
  ST[I] = M4[I] * u7 + O8[I]
end

loop track_smooth
doacross I = 1, 100
  SA[I] = SM[I-1] + P1[I] * v1
  SB[I] = SB[I-4] + P8[I] * v7
  B1[I] = P2[I] * v2 - P3[I+1]
  B2[I] = B1[I] + P4[I-1] / v3
  B3[I] = B2[I] * v4 + P5[I]
  B4[I] = B3[I] - P6[I+2] * v5
  SM[I] = B4[I] + P7[I-1] * v6
end

loop track_predict
doacross I = 1, 100
  PA[I] = PR[I-3] * w1 + R1[I]
  PB[I] = PR[I-1] / w2 - R2[I+1]
  C1[I] = R3[I] * w3 + R4[I-2]
  C2[I] = C1[I] + R5[I] * w4
  C3[I] = C2[I] - R6[I+1] / w5
  PR[I] = C3[I] * w6 + R7[I]
end

loop track_correlate
doacross I = 1, 100
  CA[I] = CR[I-2] + S1[I] * x3
  CB[I] = CR[I-1] * x4 - S2[I+1]
  D1[I] = S3[I] * x5 + S4[I-1]
  D2[I] = D1[I] / x6 - S5[I+2]
  D3[I] = D2[I] * x7 + S6[I]
  CR[I] = D3[I] + S7[I-2] * x8
end

loop track_update
doacross I = 1, 100
  UA[I] = UP[I-1] * y1 + T1[I]
  UB[I] = UB[I-2] + T2[I] * y2
  E1[I] = T3[I] * y3 - T4[I+1]
  E2[I] = E1[I] + T5[I-1] / y4
  E3[I] = E2[I] * y5 + T6[I+2]
  UP[I] = E3[I] - T7[I] * y6
end

loop track_window
do I = 1, 100
  WA[I] = Q1[I] * x1 + Q2[I+1]
  WB[I] = Q3[I-1] - Q4[I] * x2
end
)";

// ---------------------------------------------------------------------
// ADM — air-quality model stand-in; the largest code. Mixed LFD/LBD
// across many loops, including serial vertical diffusion (small gains)
// and wide horizontal transport (large gains), netting out slightly
// below the other big-improvement codes.
// ---------------------------------------------------------------------
const char* kAdm = R"(
# ADM: pollutant transport, horizontal advection sweeps.
loop adm_advect_x
doacross I = 1, 100
  AX[I] = CN[I-1] * a1 + E1[I+1]
  AY[I] = CN[I-2] / a2 + E2[I-1]
  D1[I] = E3[I] * a3 - E4[I+2]
  D2[I] = D1[I] + E5[I] * a4
  D3[I] = D2[I] - E6[I-1] / a5
  D4[I] = D3[I] * a6 + E7[I+1]
  D5[I] = D4[I] + E8[I-2] * a7
  CN[I] = D5[I] * a8 + E9[I]
end

loop adm_advect_y
doacross I = 1, 100
  BX[I] = CM[I-1] + F1[I] * b1
  G1[I] = F2[I] * b2 + F3[I+1]
  G2[I] = G1[I] - F4[I-1] * b3
  G3[I] = G2[I] / b4 + F5[I+2]
  G4[I] = G3[I] * b5 - F6[I]
  CM[I] = G4[I] + F7[I-1] * b6
end

# Vertical diffusion: tridiagonal-style serial recurrence.
loop adm_diffuse_v
doacross I = 1, 100
  VD[I] = (VD[I-1] * c1 + H1[I]) / c2
end

loop adm_chem
doacross I = 1, 100
  R1[I] = K1[I] * d1 + K2[I+1]
  R2[I] = R1[I] - K3[I] / d2
  CC[I] = R2[I] + CC[I-6] * d3
  R3[I] = K4[I-1] * d4 + K5[I]
  CD[I] = R3[I] + CC[I-2] * d5
end

# Forward source pipeline (LFD pairs).
loop adm_sources
doacross I = 1, 100
  SA[I] = L1[I] * e1 + L2[I-1]
  SB[I] = SA[I-2] + L3[I] * e2
  SC[I] = SB[I-1] - L4[I+1] / e3
  SD[I] = SA[I-4] + SC[I] * e4
end

loop adm_deposit
doacross I = 1, 100
  DA[I] = DP[I-1] * f1 + N1[I]
  T1[I] = N2[I] * f2 - N3[I+1]
  T2[I] = T1[I] + N4[I-1] * f3
  T3[I] = T2[I] / f4 + N5[I+2]
  T4[I] = T3[I] * f5 - N6[I]
  DP[I] = T4[I] + N7[I+1] * f6
end

loop adm_advect_z
doacross I = 1, 100
  CX[I] = CZ[I-1] * i1 + J1[I]
  CY[I] = CZ[I-2] + J2[I+1] / i2
  CW[I] = CW[I-4] * i3 + J9[I]
  K1[I] = J3[I] * i4 - J4[I+2]
  K2[I] = K1[I] + J5[I] * i5
  K3[I] = K2[I] / i6 - J6[I-1]
  K4[I] = K3[I] * i7 + J7[I+1]
  CZ[I] = K4[I] + J8[I-2] * i8
end

loop adm_winds
doacross I = 1, 100
  WX[I] = WF[I-1] + V1[I] * k1
  WY[I] = WF[I-3] * k2 - V2[I+1]
  L1[I] = V3[I] * k3 + V4[I-2]
  L2[I] = L1[I] - V5[I] / k4
  L3[I] = L2[I] * k5 + V6[I+1]
  L4[I] = L3[I] + V7[I-1] * k6
  WF[I] = L4[I] * k7 - V8[I+2]
end

loop adm_photolysis
doacross I = 1, 100
  PH[I] = Q1[I] * l1 + Q2[I-1]
  PJ[I] = PH[I-2] + Q3[I] * l2
  PK[I] = PJ[I-1] - Q4[I+1] / l3
  PL[I] = PH[I-3] + PK[I] * l4
end

loop adm_emission
do I = 1, 100
  EA[I] = M1[I] * g1 + M2[I+1]
  EB[I] = M3[I-1] + M4[I] * g2
  EC[I] = M5[I] - M6[I+2] / g3
end

loop adm_average
do I = 1, 100
  MA[I] = W1[I] + W2[I] * h1
  MB[I] = W3[I] * h2 - W4[I]
end
)";

std::vector<PerfectBenchmark> build_suite() {
  return {
      {"FLQ52", "transonic flow analysis (all-LBD relaxation sweeps)",
       kFlq52},
      {"QCD", "lattice gauge theory (serial recurrences, all-LBD)", kQcd},
      {"MDG", "molecular dynamics of water (mixed LFD/LBD)", kMdg},
      {"TRACK", "missile tracking filters (all-LBD)", kTrack},
      {"ADM", "air quality model (largest, mixed LFD/LBD)", kAdm},
  };
}

}  // namespace

const std::vector<PerfectBenchmark>& perfect_suite() {
  static const std::vector<PerfectBenchmark> suite = build_suite();
  return suite;
}

const PerfectBenchmark& find_benchmark(const std::string& name) {
  for (const auto& bench : perfect_suite()) {
    if (bench.name == name) return bench;
  }
  throw SbmpError("unknown benchmark: " + name);
}

BenchmarkStats compute_stats(const PerfectBenchmark& bench) {
  BenchmarkStats stats;
  stats.name = bench.name;
  for (const auto line : split(bench.source, '\n')) {
    if (!trim(line).empty()) ++stats.source_lines;
  }
  const Program program = bench.program();
  stats.total_loops = static_cast<int>(program.loops.size());
  for (const auto& loop : program.loops) {
    const DepAnalysis deps = analyze_dependences(loop);
    if (deps.is_doall()) ++stats.doall_loops;
    stats.lfd += deps.count_lfd();
    stats.lbd += deps.count_lbd();
    const SyncedLoop synced = insert_synchronization(loop, deps);
    stats.tac_lines += generate_tac(synced).size();
  }
  return stats;
}

}  // namespace sbmp
