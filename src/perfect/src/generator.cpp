#include "sbmp/perfect/generator.h"

#include <algorithm>

namespace sbmp {

namespace {

/// Output array name of statement `k` (1-based).
std::string out_array(int k) { return "A" + std::to_string(k); }

/// Independent input array name.
std::string in_array(int r) { return "X" + std::to_string(r); }

Expr random_leaf(SplitMix64& rng, const LoopGenConfig& config, int stmt,
                 int num_stmts, bool& made_carried) {
  const std::int64_t max_d = std::min<std::int64_t>(
      config.max_distance, std::max<std::int64_t>(config.trip - 1, 1));

  if (rng.chance(config.carried_read_percent)) {
    // Carried flow dependence: read out_array(j)[i - d].
    const std::int64_t d = rng.range(1, max_d);
    int j;
    if (rng.chance(config.lbd_percent)) {
      j = static_cast<int>(rng.range(stmt, num_stmts));  // self/later: LBD
    } else if (stmt > 1) {
      j = static_cast<int>(rng.range(1, stmt - 1));  // earlier: LFD
    } else {
      j = stmt;  // no earlier statement exists; fall back to LBD
    }
    made_carried = true;
    return make_ref(out_array(j), -d);
  }
  if (rng.chance(config.anti_percent)) {
    // Carried anti dependence: read an element overwritten d iterations
    // later by statement j.
    const std::int64_t d = rng.range(1, max_d);
    const int j = static_cast<int>(rng.range(1, num_stmts));
    made_carried = true;
    return make_ref(out_array(j), d);
  }
  switch (rng.range(0, 3)) {
    case 0:
      return make_ref(in_array(static_cast<int>(rng.range(1, 4))),
                      rng.range(-config.max_offset, config.max_offset));
    case 1:
      return make_scalar("c" + std::to_string(rng.range(1, 4)));
    case 2:
      return make_const(rng.range(1, 9));
    default:
      return make_ref(in_array(static_cast<int>(rng.range(1, 4))),
                      rng.range(-config.max_offset, config.max_offset));
  }
}

BinOp random_op(SplitMix64& rng) {
  // Weighted toward add/sub with occasional long-latency mul/div, like
  // compiled numeric code.
  const auto roll = rng.range(1, 100);
  if (roll <= 45) return BinOp::kAdd;
  if (roll <= 75) return BinOp::kSub;
  if (roll <= 92) return BinOp::kMul;
  return BinOp::kDiv;
}

Expr random_expr(SplitMix64& rng, const LoopGenConfig& config, int stmt,
                 int num_stmts, bool& made_carried) {
  const int leaves =
      static_cast<int>(rng.range(2, std::max(2, config.max_leaves)));
  Expr expr = random_leaf(rng, config, stmt, num_stmts, made_carried);
  for (int i = 1; i < leaves; ++i) {
    expr = make_bin(random_op(rng),
                    std::move(expr),
                    random_leaf(rng, config, stmt, num_stmts, made_carried));
  }
  return expr;
}

}  // namespace

Loop generate_random_loop(SplitMix64& rng, const LoopGenConfig& config) {
  Loop loop;
  loop.iter_var = "I";
  loop.lower = 1;
  loop.upper = config.trip;
  loop.declared_doacross = true;

  const int num_stmts =
      static_cast<int>(rng.range(config.min_stmts, config.max_stmts));
  bool made_carried = false;
  for (int k = 1; k <= num_stmts; ++k) {
    Statement stmt;
    stmt.id = k;
    stmt.lhs = ArrayRef{out_array(k), {1, 0}};
    stmt.rhs = random_expr(rng, config, k, num_stmts, made_carried);
    loop.body.push_back(std::move(stmt));
  }

  if (config.ensure_doacross && !made_carried) {
    // Force a self-recurrence on a random statement.
    const int k = static_cast<int>(rng.range(1, num_stmts));
    const std::int64_t d = rng.range(
        1, std::min<std::int64_t>(config.max_distance,
                                  std::max<std::int64_t>(config.trip - 1, 1)));
    auto& stmt = loop.body[static_cast<std::size_t>(k - 1)];
    stmt.rhs = make_bin(BinOp::kAdd, std::move(stmt.rhs),
                        make_ref(out_array(k), -d));
  }
  return loop;
}

}  // namespace sbmp
