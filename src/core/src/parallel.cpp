#include "sbmp/core/parallel.h"

#include <array>
#include <atomic>
#include <string_view>
#include <utility>
#include <vector>

#include "engine_detail.h"
#include "sbmp/support/hash.h"
#include "sbmp/support/overflow.h"
#include "sbmp/support/thread_pool.h"

namespace sbmp {

namespace {

void append_int(std::string& out, std::int64_t value) {
  out += std::to_string(value);
  out += '|';
}

/// Platform-stable fingerprint of a cache key, shared by shard routing
/// and the L1 probe. Routing only needs a well-spread value (the shard
/// map and the L1 both compare full keys), so hash a bounded head + tail
/// instead of rescanning multi-KB keys: the head covers the loop
/// rendering, the tail the option block.
std::uint64_t key_fingerprint(const std::string& key) {
  constexpr std::size_t kSpan = 64;
  const std::string_view view(key);
  std::uint64_t h = hash_bytes(view.substr(0, kSpan)) ^
                    (key.size() * 0x9e3779b97f4a7c15ull);
  if (view.size() > kSpan) h ^= hash_bytes(view.substr(view.size() - kSpan));
  return h;
}

/// One slot of the thread-local L1 front-cache. `gen` 0 marks an empty
/// slot; otherwise it names the ResultCache instance the entry belongs
/// to (ResultCache::generation()), so lookups against any other instance
/// skip it.
struct L1Entry {
  std::uint64_t gen = 0;
  std::uint64_t hash = 0;
  std::string key;
  std::shared_ptr<const LoopReport> report;
};

struct L1Table {
  std::array<L1Entry, ResultCache::kL1Entries> slots;
};

/// The calling thread's L1. One table serves every ResultCache instance
/// (entries are generation-stamped apart), so memory stays bounded at
/// kL1Entries strings + shared_ptrs per thread for the whole process.
L1Table& l1_table() {
  thread_local L1Table table;
  return table;
}

constexpr std::uint64_t l1_mask =
    static_cast<std::uint64_t>(ResultCache::kL1Entries - 1);
static_assert((ResultCache::kL1Entries &
               (ResultCache::kL1Entries - 1)) == 0,
              "L1 probing masks, so the capacity must be a power of two");

/// Stores `report` under (gen, hash, key) with the two-probe policy:
/// prefer the home slot, spill to the neighbor when the home slot holds
/// a live entry of a *different* key, evict the home slot when both are
/// taken. Same-key slots are refreshed in place.
void l1_store(std::uint64_t gen, std::uint64_t hash, const std::string& key,
              std::shared_ptr<const LoopReport> report) {
  L1Table& l1 = l1_table();
  L1Entry& home = l1.slots[static_cast<std::size_t>(hash & l1_mask)];
  L1Entry& next = l1.slots[static_cast<std::size_t>((hash + 1) & l1_mask)];
  L1Entry* slot = &home;
  if (home.gen != 0 && !(home.gen == gen && home.hash == hash &&
                         home.key == key)) {
    if (next.gen == 0 ||
        (next.gen == gen && next.hash == hash && next.key == key))
      slot = &next;
  }
  slot->gen = gen;
  slot->hash = hash;
  slot->key = key;
  slot->report = std::move(report);
}

/// Returns the L1 entry for (gen, hash, key), or nullptr.
const std::shared_ptr<const LoopReport>* l1_find(std::uint64_t gen,
                                                 std::uint64_t hash,
                                                 const std::string& key) {
  L1Table& l1 = l1_table();
  for (const std::uint64_t probe : {hash, hash + 1}) {
    const L1Entry& e = l1.slots[static_cast<std::size_t>(probe & l1_mask)];
    if (e.gen == gen && e.hash == hash && e.key == key) return &e.report;
  }
  return nullptr;
}

/// Process-global generation source; 0 is reserved for "empty slot".
std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string ResultCache::key(const Loop& loop,
                             const PipelineOptions& options) {
  std::string out;
  out.reserve(256);
  // Loop fingerprint: the LoopLang rendering round-trips through the
  // parser, so it pins everything the pipeline reads from the loop.
  out += loop.to_string();
  out += '\x1f';
  const MachineDesc& m = options.machine;
  append_int(out, m.issue_width);
  for (const int count : m.fu_counts) append_int(out, count);
  // The next three ints are the historical (mult, div, default) latency
  // triple, kept byte-for-byte so every pre-MachineDesc cache key (and
  // the fingerprints derived from them) survives unchanged whenever the
  // machine is expressible in the old model. Machines the old model
  // could not express get the canonical desc appended below — a block
  // no legacy key can collide with, since this position in a legacy key
  // always holds a digit.
  append_int(out, m.latency(Opcode::kMul));
  append_int(out, m.latency(Opcode::kDiv));
  append_int(out, m.latency(Opcode::kAddI));
  append_int(out, m.sync_consumes_slot ? 1 : 0);
  append_int(out, m.signal_latency);
  bool legacy_expressible =
      m.signal_buffer_depth == 0 &&
      m.latency(Opcode::kMulI) == m.latency(Opcode::kMul);
  for (int op = 0; op < kNumOpcodes && legacy_expressible; ++op) {
    const Opcode opcode = static_cast<Opcode>(op);
    if (opcode == Opcode::kMul || opcode == Opcode::kMulI ||
        opcode == Opcode::kDiv) {
      continue;
    }
    legacy_expressible = m.latency(opcode) == m.latency(Opcode::kAddI);
  }
  if (!legacy_expressible) {
    out += "m{";
    out += m.to_string();
    out += "}|";
  }
  append_int(out, static_cast<int>(options.scheduler));
  append_int(out, options.sync_aware.contiguous_paths ? 1 : 0);
  append_int(out, options.sync_aware.convert_lfd ? 1 : 0);
  append_int(out, options.sync.eliminate_redundant ? 1 : 0);
  append_int(out, options.iterations);
  append_int(out, options.processors);
  append_int(out, options.check_ordering ? 1 : 0);
  append_int(out, options.eliminate_redundant_waits ? 1 : 0);
  append_int(out, options.never_degrade ? 1 : 0);
  append_int(out, options.validate ? 1 : 0);
  append_int(out, options.validate_tolerance);
  // cache_dir / cache_max_bytes are deliberately absent: they choose
  // where artifacts live, never what the pipeline computes.
  return out;
}

ResultCache::ResultCache(int shards, MetricsRegistry* metrics)
    : shards_(std::make_unique<Shard[]>(
          static_cast<std::size_t>(shards > 0 ? shards : 1))),
      num_shards_(shards > 0 ? shards : 1),
      generation_(next_generation()),
      hits_(metrics != nullptr
                ? metrics->counter("sbmp_result_cache_hits_total")
                : &own_hits_),
      misses_(metrics != nullptr
                  ? metrics->counter("sbmp_result_cache_misses_total")
                  : &own_misses_),
      l1_hits_(metrics != nullptr
                   ? metrics->counter("sbmp_result_cache_l1_hits_total")
                   : &own_l1_hits_) {}

int ResultCache::shard_of(const std::string& key) const {
  // key_fingerprint is platform-stable (unlike std::hash), so a key's
  // shard is reproducible across runs — useful for tests and debugging.
  return static_cast<int>(key_fingerprint(key) %
                          static_cast<std::uint64_t>(num_shards_));
}

std::shared_ptr<const LoopReport> ResultCache::lookup(
    const std::string& key) const {
  const std::uint64_t h = key_fingerprint(key);
  // L1 first: a hit touches no shard mutex and no other thread's lines.
  if (const auto* cached = l1_find(generation_, h, key)) {
    hits_->inc();
    l1_hits_->inc();
    return *cached;
  }
  const Shard& shard =
      shards_[static_cast<std::size_t>(h % static_cast<std::uint64_t>(
          num_shards_))];
  std::shared_ptr<const LoopReport> found;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_->inc();
      return nullptr;
    }
    hits_->inc();
    found = it->second;
  }
  // Promote outside the shard lock; shards are insert-only, so the entry
  // just read is the key's entry forever and the L1 copy cannot go
  // stale.
  l1_store(generation_, h, key, found);
  return found;
}

std::shared_ptr<const LoopReport> ResultCache::insert(const std::string& key,
                                                      LoopReport report) {
  const std::uint64_t h = key_fingerprint(key);
  auto entry = std::make_shared<const LoopReport>(std::move(report));
  Shard& shard =
      shards_[static_cast<std::size_t>(h % static_cast<std::uint64_t>(
          num_shards_))];
  std::shared_ptr<const LoopReport> winner;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] = shard.map.emplace(key, std::move(entry));
    winner = it->second;
  }
  // Write through whichever entry won the race, so this thread's next
  // lookup is an L1 hit on the canonical shared report.
  l1_store(generation_, h, key, winner);
  return winner;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (int s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

LoopReport run_pipeline_cached(const Loop& loop,
                               const PipelineOptions& options,
                               ResultCache* cache) {
  if (cache == nullptr) return run_pipeline(loop, options);
  const std::string key = ResultCache::key(loop, options);
  if (const auto hit = cache->lookup(key)) return *hit;
  return *cache->insert(key, run_pipeline(loop, options));
}

SchedulerComparison compare_schedulers_cached(
    const Loop& loop, const PipelineOptions& base_options,
    ResultCache* cache) {
  SchedulerComparison out;
  PipelineOptions options = base_options;
  options.scheduler = SchedulerKind::kList;
  out.baseline = run_pipeline_cached(loop, options, cache);
  options.scheduler = SchedulerKind::kSyncAware;
  out.improved = run_pipeline_cached(loop, options, cache);
  return out;
}

CompileResult compile(const CompileRequest& request, ResultCache* cache) {
  CompileResult out;
  if (cache == nullptr) {
    out.report = core_detail::run_pipeline_caught(request.loop,
                                                  request.options);
    return out;
  }
  const std::string key = ResultCache::key(request.loop, request.options);
  if (const auto hit = cache->lookup(key)) {
    out.report = *hit;
    return out;
  }
  LoopReport report =
      core_detail::run_pipeline_caught(request.loop, request.options);
  if (report.dfg.has_value()) {
    // Completed compiles are cacheable even when validation failed (the
    // report — numbers plus violations — is still the deterministic
    // answer for this key). A stub from a thrown stage carries no DFG
    // and is not cached, matching run_pipeline_cached, which also
    // caches nothing when run_pipeline throws.
    out.report = *cache->insert(key, std::move(report));
  } else {
    out.report = std::move(report);
  }
  return out;
}

ProgramReport compile(const std::vector<CompileRequest>& requests,
                      const CompileBatchOptions& batch, ResultCache* cache) {
  ResultCache local;
  // use_cache == false disables memoization entirely, including any
  // external cache — the knob means "recompute everything", exactly as
  // ParallelOptions::use_cache always has.
  ResultCache* effective =
      batch.use_cache ? (cache != nullptr ? cache : &local) : nullptr;

  // One process-wide tuner for this call site: batches of loop compiles
  // are cost-homogeneous enough that the measured ns/item of earlier
  // batches sizes later batches' chunks (see ChunkTuner).
  static ChunkTuner compile_tuner;
  std::vector<LoopReport> reports(requests.size());
  parallel_for(
      batch.jobs, 0, static_cast<std::int64_t>(requests.size()),
      [&](std::int64_t i) {
        reports[static_cast<std::size_t>(i)] =
            compile(requests[static_cast<std::size_t>(i)], effective).report;
      },
      &compile_tuner);

  // Order-stable aggregation: identical to the serial engine's loop.
  ProgramReport out;
  out.loops.reserve(reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i)
    core_detail::fold_loop_report(out, i, std::move(reports[i]));
  return out;
}

ProgramReport run_pipeline_parallel(const Program& program,
                                    const PipelineOptions& options,
                                    const ParallelOptions& parallel,
                                    ResultCache* cache) {
  std::vector<CompileRequest> requests;
  requests.reserve(program.loops.size());
  for (const Loop& loop : program.loops) requests.push_back({loop, options});
  CompileBatchOptions batch;
  batch.jobs = parallel.jobs;
  batch.use_cache = parallel.use_cache;
  return compile(requests, batch, cache);
}

}  // namespace sbmp
