#pragma once

// Internal helpers shared by the serial (pipeline.cpp) and parallel
// (parallel.cpp) program engines so their per-loop failure handling and
// aggregation cannot drift apart. Not installed.

#include <cstddef>

#include "sbmp/core/pipeline.h"

namespace sbmp {
namespace core_detail {

/// run_pipeline with every per-loop failure converted into a stub
/// LoopReport carrying the structured status (never throws pipeline
/// errors).
[[nodiscard]] LoopReport run_pipeline_caught(const Loop& loop,
                                             const PipelineOptions& options);

/// Folds one loop's report into the program aggregate: records the
/// failure (if any), updates the doall/doacross totals for loops that
/// simulated, and appends the report.
void fold_loop_report(ProgramReport& out, std::size_t index,
                      LoopReport report);

}  // namespace core_detail
}  // namespace sbmp
