#include "sbmp/core/pipeline.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>

#include "sbmp/dfg/redundancy.h"
#include "sbmp/obs/metrics.h"
#include "sbmp/obs/trace.h"
#include "sbmp/sched/stats.h"
#include "sbmp/support/overflow.h"

namespace sbmp {

namespace {

/// Thread-local map from phase name to its histogram handle, valid for
/// one registry instance (keyed by MetricsRegistry::id(), which is
/// never reused — a stale pointer cannot alias a new registry at a
/// recycled address). Every phase of every compiled loop lands here, so
/// the string-keyed registry lookup (mutex + linear scan) runs once per
/// (thread, registry, phase) instead of once per observation. Phases
/// are identified by their string-literal pointer: every caller in this
/// translation unit passes a literal.
Histogram* cached_phase_histogram(MetricsRegistry& registry,
                                  const char* phase) {
  constexpr int kSlots = 12;
  struct Cache {
    std::uint64_t registry_id = 0;
    int used = 0;
    const char* phase[kSlots];
    Histogram* hist[kSlots];
  };
  thread_local Cache cache;
  if (cache.registry_id != registry.id()) {
    cache.registry_id = registry.id();
    cache.used = 0;
  }
  for (int i = 0; i < cache.used; ++i)
    if (cache.phase[i] == phase) return cache.hist[i];
  Histogram* hist = compile_phase_histogram(registry, phase);
  if (cache.used < kSlots) {
    cache.phase[cache.used] = phase;
    cache.hist[cache.used] = hist;
    ++cache.used;
  }
  return hist;
}

/// Times one pipeline phase into both observability sinks: a tracer
/// span (when tracing) and the canonical per-phase latency histogram
/// (when a registry is attached). With both hooks null — the default —
/// construction and destruction are two pointer tests and no clock
/// reads, which is what keeps the disabled fast path free.
class PhaseScope {
 public:
  PhaseScope(const PipelineOptions& options, const char* phase)
      : span_(Tracer::begin(options.tracer, phase)),
        metrics_(options.metrics),
        phase_(phase) {
    if (metrics_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() {
    if (metrics_ != nullptr) {
      const std::int64_t ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0_)
              .count();
      cached_phase_histogram(*metrics_, phase_)->observe(ns);
    }
  }

 private:
  Tracer::Span span_;
  MetricsRegistry* metrics_;
  const char* phase_;
  std::chrono::steady_clock::time_point t0_;
};

/// The per-loop synchronization geometry the paper's technique turns on,
/// derived from the final schedule for span attributes and counters.
struct SyncGeometry {
  std::int64_t lbd_pairs = 0;
  std::int64_t lfd_pairs = 0;
  std::int64_t worst_sync_span = 0;  ///< worst send−wait+1 (i−j span)
};

SyncGeometry sync_geometry(const LoopReport& report,
                           const PipelineOptions& options) {
  SyncGeometry out;
  const int net = options.machine.signal_latency;
  for (const auto& pair : report.dfg->pairs()) {
    const int send_slot = report.schedule.slot(pair.send_instr);
    const int wait_slot = report.schedule.slot(pair.wait_instr);
    const std::int64_t shift =
        static_cast<std::int64_t>(send_slot) + net - wait_slot;
    if (shift <= 0) {
      ++out.lfd_pairs;
    } else {
      ++out.lbd_pairs;
    }
    out.worst_sync_span =
        std::max<std::int64_t>(out.worst_sync_span, send_slot - wait_slot + 1);
  }
  return out;
}

/// Publishes the per-loop facts on the enclosing span and the registry.
/// Only called when at least one hook is live.
void record_loop_observations(Tracer::Span& span, const LoopReport& report,
                              const PipelineOptions& options) {
  const SyncGeometry geometry = sync_geometry(report, options);
  if (span) {
    span.arg("lbd_pairs", geometry.lbd_pairs);
    span.arg("lfd_pairs", geometry.lfd_pairs);
    span.arg("worst_sync_span", geometry.worst_sync_span);
    span.arg("waits_eliminated", report.waits_eliminated);
    span.arg("list_fallback", report.used_list_fallback ? 1 : 0);
    span.arg("fallback_prefiltered", report.fallback_prefiltered ? 1 : 0);
    span.arg("fallback_sim_skipped", report.fallback_sim_skipped ? 1 : 0);
    span.arg("parallel_time", report.sim.parallel_time);
  }
  if (MetricsRegistry* metrics = options.metrics) {
    // Same caching idea as cached_phase_histogram: these seven counters
    // tick for every compiled loop, so resolve them once per (thread,
    // registry) and pay only pointer increments afterwards.
    struct LoopCounters {
      std::uint64_t registry_id = 0;
      Counter* loops = nullptr;
      Counter* lbd_pairs = nullptr;
      Counter* lfd_pairs = nullptr;
      Counter* waits_eliminated = nullptr;
      Counter* list_fallback = nullptr;
      Counter* fallback_skipped = nullptr;
      Counter* fallback_sim_skipped = nullptr;
    };
    thread_local LoopCounters cached;
    if (cached.registry_id != metrics->id()) {
      cached.registry_id = metrics->id();
      cached.loops = metrics->counter("sbmp_compile_loops_total");
      cached.lbd_pairs = metrics->counter("sbmp_compile_lbd_pairs_total");
      cached.lfd_pairs = metrics->counter("sbmp_compile_lfd_pairs_total");
      cached.waits_eliminated =
          metrics->counter("sbmp_compile_waits_eliminated_total");
      cached.list_fallback =
          metrics->counter("sbmp_compile_list_fallback_total");
      cached.fallback_skipped =
          metrics->counter("sbmp_compile_fallback_skipped_total");
      cached.fallback_sim_skipped =
          metrics->counter("sbmp_compile_fallback_sim_skipped_total");
    }
    cached.loops->inc();
    cached.lbd_pairs->inc(geometry.lbd_pairs);
    cached.lfd_pairs->inc(geometry.lfd_pairs);
    cached.waits_eliminated->inc(report.waits_eliminated);
    if (report.used_list_fallback) cached.list_fallback->inc();
    if (report.fallback_prefiltered) cached.fallback_skipped->inc();
    if (report.fallback_sim_skipped) cached.fallback_sim_skipped->inc();
  }
}

}  // namespace

LoopReport run_pipeline(const Loop& loop, const PipelineOptions& options) {
  // Reject malformed machines before any stage reads them: a zero FU
  // count or non-positive latency would otherwise surface as a hang or
  // assert deep inside SlotFiller.
  if (Status status = options.machine.validate(); !status.ok())
    throw StatusError(std::move(status));
  Tracer::Span loop_span = Tracer::begin(options.tracer, "pipeline");
  if (loop_span) loop_span.arg("loop", loop.name);
  LoopReport report;
  report.name = loop.name;
  report.loop = loop;
  {
    PhaseScope phase(options, "dep");
    report.deps = analyze_dependences(loop);
  }
  report.doall = report.deps.is_doall();
  if (!report.deps.is_synchronizable()) {
    // An irregular (non-constant-distance) carried dependence cannot be
    // expressed as Wait(S, i-d); compiling the loop anyway would emit
    // code with a silent cross-iteration race. Refuse, structurally.
    std::string which;
    for (const auto& dep : report.deps.deps) {
      if (dep.loop_carried() && !dep.constant_distance) {
        if (!which.empty()) which += "; ";
        which += dep.to_string();
      }
    }
    throw StatusError(Status::error(
        StatusCode::kInput, "sync",
        "loop '" + loop.name +
            "' has irregular loop-carried dependences that uniform "
            "Wait(S, i-d) synchronization cannot express: " +
            which));
  }
  {
    PhaseScope phase(options, "sync");
    report.synced = insert_synchronization(loop, report.deps, options.sync);
  }
  {
    PhaseScope phase(options, "codegen");
    report.tac = generate_tac(report.synced);
  }
  {
    PhaseScope phase(options, "dfg");
    if (options.eliminate_redundant_waits) {
      // The pass hands back the DFG of whatever TAC results (with or
      // without removals), so this branch never rebuilds one; the
      // in-place form leaves the TAC untouched — no copy — in the
      // common nothing-to-remove case.
      eliminate_redundant_waits_inplace(report.tac, options.machine,
                                        &report.waits_eliminated,
                                        &report.dfg);
    } else {
      report.dfg.emplace(report.tac, options.machine);
    }
  }

  const std::int64_t iterations = options.resolved_iterations(loop);
  {
    PhaseScope phase(options, "schedule");
    report.schedule =
        options.scheduler == SchedulerKind::kSyncAware
            ? schedule_sync_aware(report.tac, *report.dfg, options.machine,
                                  iterations, options.sync_aware)
            : run_scheduler(options.scheduler, report.tac, *report.dfg,
                            options.machine, iterations);
    report.schedule_violations = verify_schedule(
        report.tac, *report.dfg, options.machine, report.schedule);
  }

  SimOptions sim_options;
  sim_options.iterations = iterations;
  sim_options.processors = options.processors;
  {
    PhaseScope phase(options, "sim");
    report.sim = simulate(report.tac, *report.dfg, report.schedule,
                          options.machine, sim_options);
  }

  if (options.scheduler == SchedulerKind::kSyncAware &&
      options.never_degrade) {
    // The paper's technique never degrades versus list scheduling; when
    // the phased placement loses to it (dense critical paths where
    // packing noise dominates), keep the list schedule instead. The
    // guard pays only for what it can win: the schedule-free analytic
    // bound skips the whole comparison when no schedule could beat the
    // sync-aware result, and the fallback simulation otherwise carries a
    // cutoff at the sync-aware time so a losing list schedule stops the
    // moment the loss is proven. Both shortcuts keep the
    // used_list_fallback decision — and the winner's bytes — exactly
    // identical to the unconditional full path (see docs/perf.md), so
    // never_degrade_prefilter is an A/B switch, not a semantic one.
    PhaseScope phase(options, "fallback");
    // First filter: run the list placement slots-only (identical
    // decisions to schedule_list, no group lists materialized) and
    // evaluate the analytic lower bound of that slot assignment. When
    // the bound already meets the sync-aware time, list_time >= bound
    // >= sync_time and "strictly faster" is impossible — neither the
    // materialized schedule nor the simulation is ever needed, with the
    // identical decision. This check dominates the schedule-free
    // pre-filter below (arc latencies force slot(v) >= up(v), so every
    // term of the schedule-free bound is <= the corresponding term
    // here), which is why it runs first: on the corpus it resolves
    // ~97% of loops and the weaker bound would be pure added cost.
    bool sim_skipped = false;
    if (options.never_degrade_prefilter) {
      thread_local std::vector<int> list_slots;
      const int list_len = schedule_list_slots(report.tac, *report.dfg,
                                               options.machine, list_slots);
      const std::int64_t list_bound =
          scheduled_lower_bound(report.tac, *report.dfg, options.machine,
                                list_slots, list_len, iterations);
      sim_skipped = report.sim.parallel_time <= list_bound;
    }
    if (sim_skipped) {
      report.fallback_sim_skipped = true;
    } else if (options.never_degrade_prefilter &&
               report.sim.parallel_time <=
                   schedule_free_lower_bound(report.tac, *report.dfg,
                                             options.machine, iterations)) {
      // Schedule-free pre-filter: no schedule at all could beat the
      // sync-aware time, so the same skip follows without naming the
      // list schedule. Dominated by the slots bound above, so this is
      // reachable only off the corpus; kept for the A/B flag's sake and
      // because it certifies a strictly stronger fact.
      report.fallback_prefiltered = true;
    } else {
      Schedule list = schedule_list(report.tac, *report.dfg, options.machine);
      SimOptions fallback_sim_options = sim_options;
      if (options.never_degrade_prefilter)
        fallback_sim_options.cutoff_time = report.sim.parallel_time;
      const SimResult list_sim = simulate(report.tac, *report.dfg, list,
                                          options.machine,
                                          fallback_sim_options);
      // A cutoff hit certifies list_time >= sync_time; a completed run
      // compares exact values. Either way the strict-< decision
      // matches the unbounded simulation bit for bit.
      if (!list_sim.cutoff_hit &&
          list_sim.parallel_time < report.sim.parallel_time) {
        report.schedule = std::move(list);
        report.sim = list_sim;
        report.used_list_fallback = true;
      }
    }
  }
  {
    PhaseScope phase(options, "validate");
    if (report.used_list_fallback) {
      // Re-verify the winning list schedule here rather than in the
      // fallback phase: this is validation work, and attributing it to
      // `fallback` overstated that phase's cost whenever the list
      // schedule won.
      report.schedule_violations = verify_schedule(
          report.tac, *report.dfg, options.machine, report.schedule);
    }
    if (options.check_ordering) {
      thread_local std::vector<Dependence> carried;
      carried.clear();
      for (const auto& dep : report.deps.deps)
        if (dep.loop_carried()) carried.push_back(dep);
      report.ordering_violations = check_cross_iteration_ordering(
          report.tac, *report.dfg, report.schedule, options.machine,
          sim_options, carried);
    }
    if (options.validate)
      report.validation_violations = validate_pipeline(report, options);
  }
  if (loop_span || options.metrics != nullptr)
    record_loop_observations(loop_span, report, options);
  if (!report.valid()) {
    const auto count = report.schedule_violations.size() +
                       report.ordering_violations.size() +
                       report.validation_violations.size();
    const std::string& first = !report.validation_violations.empty()
                                   ? report.validation_violations.front()
                               : !report.schedule_violations.empty()
                                   ? report.schedule_violations.front()
                                   : report.ordering_violations.front();
    report.status = Status::error(
        StatusCode::kValidation, "validate",
        "loop '" + report.name + "': " + std::to_string(count) +
            " validation violation(s); first: " + first);
  }
  return report;
}

std::vector<std::string> validate_pipeline(const LoopReport& report,
                                           const PipelineOptions& options) {
  std::vector<std::string> violations;
  const auto complain = [&](std::string msg) {
    violations.push_back(std::move(msg));
  };
  if (!report.dfg.has_value()) {
    complain("validate_pipeline: report carries no DFG (not produced by "
             "run_pipeline)");
    return violations;
  }
  const Dfg& dfg = *report.dfg;
  const int net = options.machine.signal_latency;
  const std::int64_t n = options.resolved_iterations(report.loop);
  const std::int64_t iter_time = report.sim.iteration_time;

  // Layer crossing 1: code against the sync layer's operations.
  for (auto& msg : verify_sync_pairing(
           report.tac, report.synced,
           options.eliminate_redundant_waits || report.waits_eliminated > 0))
    complain(std::move(msg));

  // Layer crossing 2: schedule against the paper's two synchronization
  // conditions, re-resolved from the sync layer (not DFG arcs).
  for (auto& msg :
       verify_sync_conditions(report.tac, report.synced, report.schedule))
    complain(std::move(msg));

  // Layer crossing 3: LBD/LFD classification consistency between the
  // schedule's slot geometry, the analytic model, and the schedule
  // statistics.
  bool all_lfd = true;
  for (const auto& pair : dfg.pairs()) {
    const int send_slot = report.schedule.slot(pair.send_instr);
    const int wait_slot = report.schedule.slot(pair.wait_instr);
    const std::int64_t shift =
        static_cast<std::int64_t>(send_slot) + net - wait_slot;
    const bool lfd = shift <= 0;
    const std::int64_t analytic = lbd_parallel_time(
        n, pair.distance, send_slot, wait_slot, iter_time, net);
    if (n > 0 && lfd && analytic != iter_time)
      complain("pair S" + std::to_string(pair.signal_stmt) +
               " classifies LFD (slots " + std::to_string(send_slot) +
               " -> " + std::to_string(wait_slot) +
               ") but the analytic model predicts " +
               std::to_string(analytic) + " != iteration time " +
               std::to_string(iter_time));
    if (!lfd) {
      all_lfd = false;
      if (n - 1 >= pair.distance &&
          analytic < sat_add(iter_time, shift))
        complain("pair S" + std::to_string(pair.signal_stmt) +
                 " classifies LBD with span shift " + std::to_string(shift) +
                 " but the analytic model predicts only " +
                 std::to_string(analytic) + " cycles");
    }
  }
  const ScheduleStats stats = compute_schedule_stats(
      report.tac, dfg, report.schedule, options.machine);
  if (net == 1 && (stats.worst_sync_span <= 0) != all_lfd)
    complain("schedule stats report worst sync span " +
             std::to_string(stats.worst_sync_span) +
             " but the analytic classification says " +
             (all_lfd ? "all pairs LFD" : "an LBD pair exists"));

  // Layer crossing 4: analytic model against the simulated cycle count.
  if (n > 0) {
    // The LBD chain bound is derived for send-at-or-after-wait slots;
    // with net > 1 a pair can have positive shift with the send slotted
    // before the wait, where the chaining argument (and so the bound)
    // does not apply — restrict to pairs it covers.
    std::int64_t bound = iter_time;
    for (const auto& pair : dfg.pairs()) {
      const int send_slot = report.schedule.slot(pair.send_instr);
      const int wait_slot = report.schedule.slot(pair.wait_instr);
      if (net != 1 && send_slot < wait_slot) continue;
      bound = std::max(bound,
                       lbd_parallel_time(n, pair.distance, send_slot,
                                         wait_slot, iter_time, net));
    }
    if (sat_add(report.sim.parallel_time, options.validate_tolerance) < bound)
      complain("simulated parallel time " +
               std::to_string(report.sim.parallel_time) +
               " beats the analytic lower bound " + std::to_string(bound) +
               " (tolerance " + std::to_string(options.validate_tolerance) +
               "): the simulation and the model disagree");
    const int procs = options.processors;
    // A bounded machine signal buffer legitimately stalls even LFD
    // loops (delivery backpressure), so exact-iteration-time equality
    // only holds with the paper's unbounded buffer.
    if (all_lfd && options.machine.signal_buffer_depth == 0 &&
        (procs <= 0 || procs >= n) &&
        report.sim.parallel_time >
            sat_add(iter_time, options.validate_tolerance))
      complain("all synchronization pairs are LFD on " +
               std::string(procs <= 0 ? "one processor per iteration"
                                      : "enough processors") +
               ", so the loop must run in the isolated iteration time " +
               std::to_string(iter_time) + ", yet it simulated at " +
               std::to_string(report.sim.parallel_time) + " (tolerance " +
               std::to_string(options.validate_tolerance) + ")");
  }
  return violations;
}

LoopReport run_pipeline(const PreLoop& pre, const PipelineOptions& options) {
  const RestructureResult restructured = restructure_or_throw(pre);
  if (!restructured.ok)
    throw SbmpError("restructuring failed for loop '" + pre.name + "'");
  LoopReport report = run_pipeline(restructured.loop, options);
  report.restructure_notes = restructured.notes;
  return report;
}

StatusCode ProgramReport::worst_status() const {
  StatusCode worst = StatusCode::kOk;
  for (const auto& loop : loops) worst = worst_code(worst, loop.status.code);
  return worst;
}

namespace core_detail {

LoopReport run_pipeline_caught(const Loop& loop,
                               const PipelineOptions& options) {
  try {
    return run_pipeline(loop, options);
  } catch (const StatusError& e) {
    LoopReport stub;
    stub.name = loop.name;
    stub.loop = loop;
    stub.status = e.status();
    return stub;
  } catch (const SbmpError& e) {
    // A stage threw a bare string error: the input does not explain it,
    // so classify as internal rather than guessing.
    LoopReport stub;
    stub.name = loop.name;
    stub.loop = loop;
    stub.status = Status::error(StatusCode::kInternal, "pipeline", e.what());
    return stub;
  }
}

void fold_loop_report(ProgramReport& out, std::size_t index,
                      LoopReport report) {
  if (!report.status.ok()) {
    out.failures.push_back({static_cast<std::int64_t>(index),
                            report.status.to_string()});
  }
  // A loop that simulated contributes to the totals even when it failed
  // validation (the numbers exist and are being reported alongside the
  // failure); a stub from a thrown stage has no DFG and no numbers.
  if (report.dfg.has_value()) {
    if (report.doall) {
      ++out.doall_loops;
    } else {
      ++out.doacross_loops;
      out.total_parallel_time =
          sat_add(out.total_parallel_time, report.parallel_time());
    }
  }
  out.loops.push_back(std::move(report));
}

}  // namespace core_detail

ProgramReport run_pipeline(const Program& program,
                           const PipelineOptions& options) {
  // Thin wrapper over the facade: jobs = 1 runs inline in program order
  // and use_cache = false recompiles every loop, which is exactly the
  // historical serial engine.
  std::vector<CompileRequest> requests;
  requests.reserve(program.loops.size());
  for (const Loop& loop : program.loops) requests.push_back({loop, options});
  CompileBatchOptions batch;
  batch.jobs = 1;
  batch.use_cache = false;
  return compile(requests, batch);
}

ProgramReport run_pipeline_source(std::string_view source,
                                  const PipelineOptions& options) {
  return run_pipeline(parse_program_or_throw(source), options);
}

std::optional<double> SchedulerComparison::improvement_opt() const {
  const auto ta = static_cast<double>(baseline.parallel_time());
  const auto tb = static_cast<double>(improved.parallel_time());
  if (ta <= 0.0) return std::nullopt;
  return (ta - tb) / ta;
}

double SchedulerComparison::improvement() const {
  const std::optional<double> value = improvement_opt();
  assert(value.has_value() &&
         "non-positive baseline parallel time: upstream pipeline failure");
  return value.value_or(std::numeric_limits<double>::quiet_NaN());
}

SchedulerComparison compare_schedulers(const Loop& loop,
                                       const PipelineOptions& base_options) {
  SchedulerComparison out;
  PipelineOptions options = base_options;
  options.scheduler = SchedulerKind::kList;
  out.baseline = run_pipeline(loop, options);
  options.scheduler = SchedulerKind::kSyncAware;
  out.improved = run_pipeline(loop, options);
  return out;
}

}  // namespace sbmp
