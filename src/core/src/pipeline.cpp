#include "sbmp/core/pipeline.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "sbmp/dfg/redundancy.h"
#include "sbmp/support/overflow.h"

namespace sbmp {

LoopReport run_pipeline(const Loop& loop, const PipelineOptions& options) {
  LoopReport report;
  report.name = loop.name;
  report.loop = loop;
  report.deps = analyze_dependences(loop);
  report.doall = report.deps.is_doall();
  report.synced = insert_synchronization(loop, report.deps, options.sync);
  report.tac = generate_tac(report.synced);
  if (options.eliminate_redundant_waits) {
    report.tac = eliminate_redundant_waits(report.tac, options.machine,
                                           &report.waits_eliminated);
  }
  report.dfg.emplace(report.tac, options.machine);

  const std::int64_t iterations = options.resolved_iterations(loop);
  report.schedule =
      options.scheduler == SchedulerKind::kSyncAware
          ? schedule_sync_aware(report.tac, *report.dfg, options.machine,
                                iterations, options.sync_aware)
          : run_scheduler(options.scheduler, report.tac, *report.dfg,
                          options.machine, iterations);
  report.schedule_violations = verify_schedule(
      report.tac, *report.dfg, options.machine, report.schedule);

  SimOptions sim_options;
  sim_options.iterations = iterations;
  sim_options.processors = options.processors;
  report.sim = simulate(report.tac, *report.dfg, report.schedule,
                        options.machine, sim_options);

  if (options.scheduler == SchedulerKind::kSyncAware &&
      options.never_degrade) {
    // The paper's technique never degrades versus list scheduling; when
    // the phased placement loses to it (dense critical paths where
    // packing noise dominates), keep the list schedule instead.
    Schedule list = schedule_list(report.tac, *report.dfg, options.machine);
    const SimResult list_sim = simulate(report.tac, *report.dfg, list,
                                        options.machine, sim_options);
    if (list_sim.parallel_time < report.sim.parallel_time) {
      report.schedule = std::move(list);
      report.sim = list_sim;
      report.used_list_fallback = true;
      report.schedule_violations = verify_schedule(
          report.tac, *report.dfg, options.machine, report.schedule);
    }
  }
  if (options.check_ordering) {
    std::vector<Dependence> carried;
    for (const auto& dep : report.deps.deps)
      if (dep.loop_carried()) carried.push_back(dep);
    report.ordering_violations = check_cross_iteration_ordering(
        report.tac, *report.dfg, report.schedule, options.machine,
        sim_options, carried);
  }
  return report;
}

LoopReport run_pipeline(const PreLoop& pre, const PipelineOptions& options) {
  const RestructureResult restructured = restructure_or_throw(pre);
  if (!restructured.ok)
    throw SbmpError("restructuring failed for loop '" + pre.name + "'");
  LoopReport report = run_pipeline(restructured.loop, options);
  report.restructure_notes = restructured.notes;
  return report;
}

ProgramReport run_pipeline(const Program& program,
                           const PipelineOptions& options) {
  ProgramReport out;
  for (const auto& loop : program.loops) {
    LoopReport report = run_pipeline(loop, options);
    if (report.doall) {
      ++out.doall_loops;
    } else {
      ++out.doacross_loops;
      out.total_parallel_time =
          sat_add(out.total_parallel_time, report.parallel_time());
    }
    out.loops.push_back(std::move(report));
  }
  return out;
}

ProgramReport run_pipeline_source(std::string_view source,
                                  const PipelineOptions& options) {
  return run_pipeline(parse_program_or_throw(source), options);
}

std::optional<double> SchedulerComparison::improvement_opt() const {
  const auto ta = static_cast<double>(baseline.parallel_time());
  const auto tb = static_cast<double>(improved.parallel_time());
  if (ta <= 0.0) return std::nullopt;
  return (ta - tb) / ta;
}

double SchedulerComparison::improvement() const {
  const std::optional<double> value = improvement_opt();
  assert(value.has_value() &&
         "non-positive baseline parallel time: upstream pipeline failure");
  return value.value_or(std::numeric_limits<double>::quiet_NaN());
}

SchedulerComparison compare_schedulers(const Loop& loop,
                                       const PipelineOptions& base_options) {
  SchedulerComparison out;
  PipelineOptions options = base_options;
  options.scheduler = SchedulerKind::kList;
  out.baseline = run_pipeline(loop, options);
  options.scheduler = SchedulerKind::kSyncAware;
  out.improved = run_pipeline(loop, options);
  return out;
}

}  // namespace sbmp
