#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sbmp/codegen/codegen.h"
#include "sbmp/dep/dependence.h"
#include "sbmp/dfg/dfg.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/machine/machine.h"
#include "sbmp/restructure/restructure.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/sim/analytic.h"
#include "sbmp/sim/simulator.h"
#include "sbmp/sync/sync.h"

namespace sbmp {

/// Options for the full compile-schedule-simulate pipeline. This mirrors
/// the paper's Fig 5 statistical model: source -> DOACROSS extraction ->
/// synchronization insertion -> DLX code -> scheduler -> simulator.
struct PipelineOptions {
  MachineConfig machine = MachineConfig::paper(4, 1);
  SchedulerKind scheduler = SchedulerKind::kSyncAware;
  SyncAwareOptions sync_aware;
  SyncOptions sync;
  /// Iterations to simulate; 0 uses the loop's own trip count. The
  /// paper's tables use 100.
  std::int64_t iterations = 100;
  /// Processor count; 0 means one per iteration.
  int processors = 0;
  /// Run the staleness check on every loop-carried dependence.
  bool check_ordering = false;
  /// Drop waits whose ordering is already implied at the access level
  /// (the scheduling-safe analysis in sbmp/dfg/redundancy.h). Note this
  /// is distinct from SyncOptions::eliminate_redundant, whose
  /// statement-level covering is only sound without instruction
  /// scheduling.
  bool eliminate_redundant_waits = false;
  /// Enforce the paper's "never degrades" guarantee for the sync-aware
  /// scheduler: when the heuristic placement simulates slower than plain
  /// list scheduling (possible when everything sits on the critical
  /// path and packing noise dominates), fall back to the list schedule.
  bool never_degrade = true;

  /// The one place the "`iterations` 0 uses the loop's own trip count"
  /// rule lives. Every consumer of an iteration count (scheduler
  /// priority, simulator, trace dumps) must resolve through here so the
  /// semantics cannot drift; `simulate` itself treats its already-
  /// resolved count literally (see SimOptions).
  [[nodiscard]] std::int64_t resolved_iterations(const Loop& loop) const {
    return iterations > 0 ? iterations : loop.trip_count();
  }
};

/// Everything produced for one loop.
struct LoopReport {
  std::string name;
  Loop loop;
  DepAnalysis deps;
  SyncedLoop synced;
  TacFunction tac;
  std::optional<Dfg> dfg;
  Schedule schedule;
  SimResult sim;
  bool doall = false;
  /// Transformations the restructuring pre-pass applied (only when the
  /// pipeline ran on a pre-form loop).
  std::vector<RestructureNote> restructure_notes;
  /// Waits dropped by the access-level redundancy pass (when enabled).
  int waits_eliminated = 0;
  /// True when the never-degrade guard replaced the sync-aware schedule
  /// with the list schedule.
  bool used_list_fallback = false;
  std::vector<std::string> schedule_violations;
  std::vector<std::string> ordering_violations;

  [[nodiscard]] std::int64_t parallel_time() const {
    return sim.parallel_time;
  }
  [[nodiscard]] bool valid() const {
    return schedule_violations.empty() && ordering_violations.empty();
  }
};

/// Aggregate over a program (a benchmark).
struct ProgramReport {
  std::vector<LoopReport> loops;
  /// Sum of the parallel times of the DOACROSS loops (the paper's total
  /// execution time metric; Doall loops need no synchronization and are
  /// excluded, matching the statistical model).
  std::int64_t total_parallel_time = 0;
  int doacross_loops = 0;
  int doall_loops = 0;
};

/// Runs the full pipeline on one loop.
[[nodiscard]] LoopReport run_pipeline(const Loop& loop,
                                      const PipelineOptions& options);

/// Restructures a pre-form loop (scalar expansion, reduction
/// replacement, induction-variable substitution — the paper's Fig 5
/// front half) and runs the pipeline on the result. Throws SbmpError if
/// restructuring fails.
[[nodiscard]] LoopReport run_pipeline(const PreLoop& pre,
                                      const PipelineOptions& options);

/// Runs the pipeline on each loop of `program` and aggregates.
[[nodiscard]] ProgramReport run_pipeline(const Program& program,
                                         const PipelineOptions& options);

/// Parses `source` and runs the pipeline on every loop in it. Throws
/// SbmpError on parse failure.
[[nodiscard]] ProgramReport run_pipeline_source(std::string_view source,
                                                const PipelineOptions& options);

/// Side-by-side result of two schedulers on the same loop, the paper's
/// core comparison.
struct SchedulerComparison {
  LoopReport baseline;  ///< list scheduling (T_a)
  LoopReport improved;  ///< sync-aware scheduling (T_b)

  /// (T_a - T_b) / T_a, the paper's "improved percentage", or nullopt
  /// when the baseline parallel time is zero or negative. A non-positive
  /// T_a means an upstream failure (empty loop, zero-trip simulation) —
  /// not "no improvement" — so it must not be folded into 0.0.
  [[nodiscard]] std::optional<double> improvement_opt() const;

  /// Like improvement_opt(), but for callers that want a plain double:
  /// asserts on a non-positive baseline in debug builds and returns
  /// quiet NaN in release builds, so a failed baseline poisons every
  /// derived statistic instead of silently reading as 0%.
  [[nodiscard]] double improvement() const;
};

[[nodiscard]] SchedulerComparison compare_schedulers(
    const Loop& loop, const PipelineOptions& base_options);

}  // namespace sbmp
