#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sbmp/codegen/codegen.h"
#include "sbmp/dep/dependence.h"
#include "sbmp/dfg/dfg.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/machine/machine.h"
#include "sbmp/restructure/restructure.h"
#include "sbmp/sched/schedulers.h"
#include "sbmp/sched/validate.h"
#include "sbmp/sim/analytic.h"
#include "sbmp/sim/simulator.h"
#include "sbmp/support/status.h"
#include "sbmp/sync/sync.h"

namespace sbmp {

class Tracer;           // sbmp/obs/trace.h
class MetricsRegistry;  // sbmp/obs/metrics.h

/// Options for the full compile-schedule-simulate pipeline. This mirrors
/// the paper's Fig 5 statistical model: source -> DOACROSS extraction ->
/// synchronization insertion -> DLX code -> scheduler -> simulator.
struct PipelineOptions {
  MachineDesc machine = machines::paper(4, 1);
  SchedulerKind scheduler = SchedulerKind::kSyncAware;
  SyncAwareOptions sync_aware;
  SyncOptions sync;
  /// Iterations to simulate; 0 uses the loop's own trip count. The
  /// paper's tables use 100.
  std::int64_t iterations = 100;
  /// Processor count; 0 means one per iteration.
  int processors = 0;
  /// Run the staleness check on every loop-carried dependence.
  bool check_ordering = false;
  /// Drop waits whose ordering is already implied at the access level
  /// (the scheduling-safe analysis in sbmp/dfg/redundancy.h). Note this
  /// is distinct from SyncOptions::eliminate_redundant, whose
  /// statement-level covering is only sound without instruction
  /// scheduling.
  bool eliminate_redundant_waits = false;
  /// Enforce the paper's "never degrades" guarantee for the sync-aware
  /// scheduler: when the heuristic placement simulates slower than plain
  /// list scheduling (possible when everything sits on the critical
  /// path and packing noise dominates), fall back to the list schedule.
  bool never_degrade = true;
  /// Cost control for the never-degrade guard, on by default: before the
  /// list schedule is even built, the schedule-free analytic lower bound
  /// (schedule_free_lower_bound) decides whether ANY schedule could beat
  /// the sync-aware result — when it cannot, the fallback schedule and
  /// simulation are skipped entirely; when it might, the fallback
  /// simulation runs with a cutoff at the sync-aware parallel time and
  /// aborts the moment "list loses" is proven. Both shortcuts are exact
  /// (the monotonicity/bound arguments are in docs/perf.md), so the
  /// compiled artifact is byte-identical either way and this flag is NOT
  /// part of any cache key — it exists only as an A/B escape hatch
  /// (sbmpc --no-never-degrade-prefilter) forcing the old full
  /// schedule + full simulate path.
  bool never_degrade_prefilter = true;
  /// Run the cross-layer validator (validate_pipeline) on every loop:
  /// Sig/Wat pairing integrity, the paper's two synchronization
  /// conditions re-resolved from the sync layer (independent of DFG
  /// arcs), LBD/LFD classification consistency with the analytic model,
  /// and the analytic-vs-simulated cycle cross-check. On by default —
  /// a pipeline that silently mis-synchronizes is worse than a slow one.
  bool validate = true;
  /// Slack (in cycles) granted to the analytic-vs-simulated
  /// cross-checks; 0 demands the exact relations.
  std::int64_t validate_tolerance = 0;
  /// Directory of the persistent content-addressed schedule cache
  /// (sbmp/serve/disk_cache.h); empty disables it. NOT part of any
  /// cache key: where a report is stored cannot change its bytes, so
  /// ResultCache::key and the serve-layer fingerprint both skip it —
  /// adding it would make every directory a disjoint key space for
  /// identical artifacts.
  std::string cache_dir;
  /// Size cap (bytes) for the on-disk cache; oldest entries are evicted
  /// first. Like cache_dir, never part of a cache key.
  std::int64_t cache_max_bytes = 256ll << 20;
  /// Observability hooks (sbmp/obs): when set, every pipeline phase
  /// (dep → sync → codegen → dfg → schedule → sim → validate) opens a
  /// span on `tracer` and observes its latency on `metrics`, and the
  /// per-loop facts the paper's technique turns on (LBD/LFD pair counts,
  /// worst i−j sync span, waits eliminated, never-degrade fallbacks)
  /// travel as span arguments. Instrumentation observes a compile; it
  /// can never change its bytes — so like cache_dir these are NOT part
  /// of any cache key and are never serialized, and both nullptr (the
  /// default) costs two pointer tests per phase.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  /// The one place the "`iterations` 0 uses the loop's own trip count"
  /// rule lives. Every consumer of an iteration count (scheduler
  /// priority, simulator, trace dumps) must resolve through here so the
  /// semantics cannot drift; `simulate` itself treats its already-
  /// resolved count literally (see SimOptions).
  [[nodiscard]] std::int64_t resolved_iterations(const Loop& loop) const {
    return iterations > 0 ? iterations : loop.trip_count();
  }
};

/// Everything produced for one loop.
struct LoopReport {
  std::string name;
  Loop loop;
  DepAnalysis deps;
  SyncedLoop synced;
  TacFunction tac;
  std::optional<Dfg> dfg;
  Schedule schedule;
  SimResult sim;
  bool doall = false;
  /// Transformations the restructuring pre-pass applied (only when the
  /// pipeline ran on a pre-form loop).
  std::vector<RestructureNote> restructure_notes;
  /// Waits dropped by the access-level redundancy pass (when enabled).
  int waits_eliminated = 0;
  /// True when the never-degrade guard replaced the sync-aware schedule
  /// with the list schedule.
  bool used_list_fallback = false;
  /// True when the analytic pre-filter proved no schedule could beat the
  /// sync-aware result and the fallback schedule + simulation were
  /// skipped. Purely observational (the artifact is byte-identical with
  /// or without the skip): never serialized, never part of a cache key.
  bool fallback_prefiltered = false;
  /// True when the list schedule was built but its own analytic lower
  /// bound (scheduled_lower_bound) already met the sync-aware time, so
  /// the fallback simulation was skipped — "list strictly faster" was
  /// impossible. Observational only, like fallback_prefiltered.
  bool fallback_sim_skipped = false;
  std::vector<std::string> schedule_violations;
  std::vector<std::string> ordering_violations;
  /// Cross-layer validator findings (see validate_pipeline).
  std::vector<std::string> validation_violations;
  /// Structured outcome of this loop's pipeline run. ok() for a loop
  /// that compiled and simulated; kValidation when any violation list is
  /// non-empty.
  Status status = Status::okay();

  [[nodiscard]] std::int64_t parallel_time() const {
    return sim.parallel_time;
  }
  [[nodiscard]] bool valid() const {
    return schedule_violations.empty() && ordering_violations.empty() &&
           validation_violations.empty();
  }
};

/// Aggregate over a program (a benchmark).
struct ProgramReport {
  std::vector<LoopReport> loops;
  /// Sum of the parallel times of the DOACROSS loops (the paper's total
  /// execution time metric; Doall loops need no synchronization and are
  /// excluded, matching the statistical model).
  std::int64_t total_parallel_time = 0;
  int doacross_loops = 0;
  int doall_loops = 0;
  /// Per-loop pipeline failures (loop index into the source program and
  /// the diagnostic), aggregated across ALL loops: one failing loop does
  /// not abort the program run, and every successful loop's report is
  /// still present in `loops`. A failed loop contributes a stub report
  /// whose `status` carries the error.
  std::vector<IndexedFailure> failures;

  [[nodiscard]] bool all_ok() const { return failures.empty(); }
  /// The worst status code across all loops (kOk when all succeeded).
  [[nodiscard]] StatusCode worst_status() const;
};

class ResultCache;  // sbmp/core/parallel.h

// ---------------------------------------------------------------------
// Unified compile facade.
//
// This is the one front door for "compile this loop (or these loops)
// under these options": sbmpc, sbmpd, the serving layer and the benches
// all route through it, so caching, failure folding and instrumentation
// behave identically everywhere. The older free functions below
// (run_pipeline, run_pipeline_parallel in parallel.h) remain as thin
// wrappers for source compatibility and should be treated as deprecated:
// new call sites use compile().

/// One unit of compile work. This is also the request type the serving
/// layer's batch API and the sbmpd wire protocol are built from.
struct CompileRequest {
  Loop loop;
  PipelineOptions options;
};

/// Outcome of one CompileRequest. Never throws out of the facade: a
/// refused or failed compile yields a stub report whose `status` carries
/// the structured error (exactly the stub a program-level engine folds).
struct CompileResult {
  LoopReport report;

  [[nodiscard]] bool ok() const { return report.status.ok(); }
};

/// Compiles one request, consulting `cache` (may be nullptr) before
/// running the pipeline. Never throws pipeline errors.
[[nodiscard]] CompileResult compile(const CompileRequest& request,
                                    ResultCache* cache = nullptr);

/// Batch knobs for the facade (the program-level engines are wrappers
/// over this).
struct CompileBatchOptions {
  /// Worker threads: 0 = one per hardware thread, 1 = inline on the
  /// calling thread in request order (bit-identical to a serial loop).
  int jobs = 1;
  /// Memoize identical (loop, options) requests within the batch when no
  /// external cache is supplied.
  bool use_cache = true;
};

/// Compiles every request, fanned out over `batch.jobs` workers, and
/// aggregates into a ProgramReport exactly like the program engines:
/// order-stable (loops[i] answers requests[i]), failure-isolated, and
/// byte-identical for any job count.
[[nodiscard]] ProgramReport compile(const std::vector<CompileRequest>& requests,
                                    const CompileBatchOptions& batch = {},
                                    ResultCache* cache = nullptr);

/// Runs the full pipeline on one loop. Throws StatusError (code kInput)
/// when the loop carries an irregular dependence that the paper's
/// Wait(S, i-d) scheme cannot synchronize — compiling it anyway would
/// silently produce a racy binary. Prefer the non-throwing compile()
/// facade in new code.
[[nodiscard]] LoopReport run_pipeline(const Loop& loop,
                                      const PipelineOptions& options);

/// Cross-layer schedule validation (the grown form of verify_schedule):
///  * Sig/Wat pairing integrity against the sync layer (every wait has
///    exactly one partner send with a consistent distance, every sync
///    instruction traces to a sync-layer operation and vice versa);
///  * the paper's two synchronization conditions checked directly
///    against source/sink access instructions re-resolved from the
///    SyncedLoop — not via DFG arcs or guarded_instrs, so a dropped arc
///    is itself caught;
///  * LBD/LFD classification consistency between the schedule's sync
///    spans and the analytic (n/d)(i-j+net) + l model;
///  * analytic-vs-simulated cycle cross-checks: the simulated parallel
///    time never beats the analytic lower bound, and an all-LFD
///    schedule on >= n processors simulates in exactly the isolated
///    iteration time (within options.validate_tolerance).
/// Requires report.dfg and report.sim to be populated (i.e. a report
/// produced by run_pipeline). Returns human-readable violations.
[[nodiscard]] std::vector<std::string> validate_pipeline(
    const LoopReport& report, const PipelineOptions& options);

/// Restructures a pre-form loop (scalar expansion, reduction
/// replacement, induction-variable substitution — the paper's Fig 5
/// front half) and runs the pipeline on the result. Throws SbmpError if
/// restructuring fails.
[[nodiscard]] LoopReport run_pipeline(const PreLoop& pre,
                                      const PipelineOptions& options);

/// Runs the pipeline on each loop of `program` and aggregates.
[[nodiscard]] ProgramReport run_pipeline(const Program& program,
                                         const PipelineOptions& options);

/// Parses `source` and runs the pipeline on every loop in it. Throws
/// SbmpError on parse failure.
[[nodiscard]] ProgramReport run_pipeline_source(std::string_view source,
                                                const PipelineOptions& options);

/// Side-by-side result of two schedulers on the same loop, the paper's
/// core comparison.
struct SchedulerComparison {
  LoopReport baseline;  ///< list scheduling (T_a)
  LoopReport improved;  ///< sync-aware scheduling (T_b)

  /// (T_a - T_b) / T_a, the paper's "improved percentage", or nullopt
  /// when the baseline parallel time is zero or negative. A non-positive
  /// T_a means an upstream failure (empty loop, zero-trip simulation) —
  /// not "no improvement" — so it must not be folded into 0.0.
  [[nodiscard]] std::optional<double> improvement_opt() const;

  /// Like improvement_opt(), but for callers that want a plain double:
  /// asserts on a non-positive baseline in debug builds and returns
  /// quiet NaN in release builds, so a failed baseline poisons every
  /// derived statistic instead of silently reading as 0%.
  [[nodiscard]] double improvement() const;
};

[[nodiscard]] SchedulerComparison compare_schedulers(
    const Loop& loop, const PipelineOptions& base_options);

}  // namespace sbmp
