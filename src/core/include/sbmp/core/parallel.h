#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sbmp/core/pipeline.h"
#include "sbmp/obs/metrics.h"

namespace sbmp {

/// Options for the parallel pipeline engine.
struct ParallelOptions {
  /// Worker threads. 0 = one per hardware thread; 1 runs every loop
  /// inline on the calling thread in program order — bit-identical to
  /// the serial `run_pipeline(Program)` engine.
  int jobs = 0;
  /// Memoize per-loop results (see ResultCache). Identical (loop,
  /// options) pairs — common in benchmark grids that sweep machine
  /// cases and schedulers over one suite — compile and schedule once.
  bool use_cache = true;
};

/// Thread-safe memo table for pipeline runs.
///
/// The key is the exact input of `run_pipeline(Loop, PipelineOptions)`:
/// the loop fingerprint (its round-trippable LoopLang rendering, which
/// pins name, bounds, body, and element types) plus every option that
/// can change the report — machine configuration, scheduler kind,
/// sync-aware and sync-insertion switches, iteration and processor
/// counts, and the verification/elimination flags. Two calls with equal
/// keys are the same pure computation, so a hit returns a shared
/// immutable report with no locking beyond the map probe.
///
/// The table is sharded N ways by a stable key fingerprint, so
/// `run_pipeline_parallel --jobs N` and ScheduleServer batch fan-out
/// contend on a lock only when two workers touch keys in the same
/// shard, not on every probe. Which shard holds a key is an internal
/// layout detail: lookup/insert semantics are identical at any shard
/// count, including 1 (the old single-mutex table).
///
/// In front of the shards sits a small fixed-size `thread_local` L1 (64
/// open-addressed entries, two probe slots per key), so repeat lookups
/// from one worker touch no shard mutex at all: hits promote into the
/// L1 and inserts write through it. The L1 is a pure accelerator over
/// the shared source of truth — shards are insert-only and a racing
/// insert keeps the first entry, so an L1-cached shared_ptr can never go
/// stale within a cache's lifetime, and lookup/insert semantics
/// (including hits()/misses() totals) are identical at any jobs count.
/// Entries are generation-stamped with a process-unique per-instance id,
/// so a thread's leftovers from a destroyed cache (or another live one)
/// can never satisfy a lookup against this one, even when the allocator
/// reuses the address.
class ResultCache {
 public:
  static constexpr int kDefaultShards = 16;
  /// L1 capacity per thread (power of two; ~64 covers a worker's hot
  /// set in the bench grids and daemon fan-out).
  static constexpr int kL1Entries = 64;

  /// `metrics` (optional) publishes the hit/miss counters on a shared
  /// registry (`sbmp_result_cache_{hits,misses}_total`); without one the
  /// cache keeps private Counter instruments, and `hits()`/`misses()`
  /// read whichever is active — callers never see the difference.
  explicit ResultCache(int shards = kDefaultShards,
                       MetricsRegistry* metrics = nullptr);

  /// Builds the canonical cache key for (loop, options).
  [[nodiscard]] static std::string key(const Loop& loop,
                                       const PipelineOptions& options);

  /// Returns the cached report for `key`, or nullptr.
  [[nodiscard]] std::shared_ptr<const LoopReport> lookup(
      const std::string& key) const;

  /// Inserts `report` under `key`; if another thread raced the same key
  /// in first, the existing entry wins (both are the same computation)
  /// and is returned.
  std::shared_ptr<const LoopReport> insert(const std::string& key,
                                           LoopReport report);

  [[nodiscard]] std::size_t size() const;
  /// Compatibility shims over the Counter instruments (the pre-registry
  /// API; cheap enough to keep forever).
  [[nodiscard]] std::int64_t hits() const { return hits_->value(); }
  [[nodiscard]] std::int64_t misses() const { return misses_->value(); }
  /// Hits served from the calling thread's L1 front-cache (a subset of
  /// hits(); registry name `sbmp_result_cache_l1_hits_total`).
  [[nodiscard]] std::int64_t l1_hits() const { return l1_hits_->value(); }

  [[nodiscard]] int num_shards() const { return num_shards_; }
  /// Process-unique instance stamp guarding the thread-local L1 entries
  /// (exposed so tests can pin the invalidation behavior).
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  /// Shard a key routes to (stable across runs; exposed so tests can
  /// check the distribution).
  [[nodiscard]] int shard_of(const std::string& key) const;
  /// Alignment of one shard slot (exposed so tests can pin the layout).
  [[nodiscard]] static constexpr std::size_t shard_alignment() {
    return alignof(Shard);
  }

 private:
  // Cache-line alignment keeps adjacent shards' mutexes out of each
  // other's lines: without it, two workers hammering *different* shards
  // still bounce one line between cores (false sharing), which is
  // contention the sharding exists to remove.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const LoopReport>> map;
  };

  // Shards hold mutexes, so they live in a fixed-size heap array rather
  // than a vector (no moves, no false sharing with the counters).
  std::unique_ptr<Shard[]> shards_;
  int num_shards_;
  // Process-unique stamp drawn from a global atomic at construction; L1
  // entries carry it, so entries of any other cache instance — including
  // a dead one whose address this cache reuses — never match.
  std::uint64_t generation_;
  // Hit/miss instruments: registry-owned when one was injected,
  // otherwise the private pair below (same relaxed-atomic cost either
  // way). The pointers are set once in the constructor and never change.
  Counter own_hits_;
  Counter own_misses_;
  Counter own_l1_hits_;
  Counter* hits_;
  Counter* misses_;
  Counter* l1_hits_;
};

/// `run_pipeline(loop, options)` through `cache` (nullptr = uncached).
[[nodiscard]] LoopReport run_pipeline_cached(const Loop& loop,
                                             const PipelineOptions& options,
                                             ResultCache* cache);

/// `compare_schedulers` with both runs routed through `cache`.
[[nodiscard]] SchedulerComparison compare_schedulers_cached(
    const Loop& loop, const PipelineOptions& base_options,
    ResultCache* cache);

/// Parallel pipeline engine: compiles, schedules and simulates each loop
/// of `program` on its own worker (LoopReports are independent value
/// types) and aggregates into a ProgramReport deterministically — loops
/// appear in program order and every total is accumulated in that order,
/// so the result is identical for any job count, and `jobs = 1` executes
/// the exact serial engine. `cache` (optional) memoizes across calls;
/// with `parallel.use_cache` and no external cache, a per-call cache
/// still deduplicates repeated loops within `program`.
[[nodiscard]] ProgramReport run_pipeline_parallel(
    const Program& program, const PipelineOptions& options,
    const ParallelOptions& parallel = {}, ResultCache* cache = nullptr);

}  // namespace sbmp
