// Machine-design explorer: reads a LoopLang file (or uses a built-in
// reduction loop) and sweeps issue width and function-unit counts,
// reporting the parallel time under both schedulers — the kind of
// design-space table an architect would derive from the paper's model.
//
// Usage: machine_explorer [loop-file.loop]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sbmp/core/pipeline.h"

namespace {

constexpr const char* kDefaultLoop = R"(
# Reduction-style loop after reduction replacement (partial sums in
# PS[], combined later), plus gather work.
doacross I = 1, 100
  PS[I] = PS[I-1] + X[I] * X[I]
  W1[I] = X[I-1] * c1 + Y[I+1]
  W2[I] = W1[I] - Y[I] / c2
  W3[I] = W2[I] * c3 + Y[I-2]
  Z[I]  = W3[I] + X[I+2] * c4
end
)";

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbmp;

  const std::string source = argc > 1 ? read_file(argv[1]) : kDefaultLoop;
  const Program program = parse_program_or_throw(source);

  std::printf("%-8s %-6s  %10s  %10s  %9s\n", "width", "#FU", "list",
              "sync-aware", "improve");
  for (const int width : {1, 2, 4, 8}) {
    for (const int fus : {1, 2, 4}) {
      if (fus > width) continue;
      PipelineOptions options;
      options.machine = machines::paper(width, fus);
      options.iterations = 100;
      std::int64_t ta = 0;
      std::int64_t tb = 0;
      for (const auto& loop : program.loops) {
        if (analyze_dependences(loop).is_doall()) continue;
        const SchedulerComparison cmp = compare_schedulers(loop, options);
        ta += cmp.baseline.parallel_time();
        tb += cmp.improved.parallel_time();
      }
      std::printf("%-8d %-6d  %10lld  %10lld  %8.2f%%\n", width, fus,
                  static_cast<long long>(ta), static_cast<long long>(tb),
                  ta > 0 ? 100.0 * static_cast<double>(ta - tb) /
                               static_cast<double>(ta)
                         : 0.0);
    }
  }
  std::printf(
      "\nTakeaway: the sync-aware time is set by the synchronization\n"
      "path, so wider issue buys little; list scheduling can even get\n"
      "slower with width as waits float further forward.\n");
  return 0;
}
