// Walks the paper's running example through every stage, printing the
// artifacts of Figures 1, 2, 3 and 4: the synchronized loop, the
// three-address code, the DFG component partition with the
// synchronization path, and both schedules with their parallel times.
#include <cstdio>

#include "sbmp/core/pipeline.h"

int main() {
  using namespace sbmp;

  const char* source = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";
  const Loop loop = parse_single_loop_or_throw(source);

  // --- Fig 1: dependences and synchronization insertion --------------
  const DepAnalysis deps = analyze_dependences(loop);
  std::printf("=== Fig 1: dependences ===\n");
  for (const auto& dep : deps.deps)
    std::printf("  %s\n", dep.to_string().c_str());
  const SyncedLoop synced = insert_synchronization(loop, deps);
  std::printf("\n=== Fig 1(b): synchronized loop ===\n%s\n",
              synced.to_string().c_str());

  // --- Fig 2: three-address code --------------------------------------
  const TacFunction tac = generate_tac(synced);
  std::printf("=== Fig 2: DLX-like three-address code ===\n%s\n",
              tac.to_string().c_str());

  // --- Fig 3: DFG partition and synchronization paths -----------------
  const MachineDesc machine = machines::paper(4, 1);
  const Dfg dfg(tac, machine);
  std::printf("=== Fig 3: DFG components ===\n");
  for (int c = 0; c < dfg.num_components(); ++c) {
    std::printf("  component %d (%s):", c,
                component_kind_name(dfg.component_kind(c)));
    for (const int id : dfg.component_members(c)) std::printf(" %d", id);
    std::printf("\n");
  }
  for (const auto& pair : dfg.pairs()) {
    const auto path = dfg.sync_path(pair);
    std::printf("  pair d=%lld wait=%d send=%d: ",
                static_cast<long long>(pair.distance), pair.wait_instr,
                pair.send_instr);
    if (path.empty()) {
      std::printf("no directed path (convertible to LFD)\n");
    } else {
      std::printf("SP =");
      for (const int id : path) std::printf(" %d", id);
      std::printf("\n");
    }
  }

  // --- Fig 4: schedules and parallel times -----------------------------
  PipelineOptions options;
  options.machine = machine;
  options.iterations = 100;
  const SchedulerComparison cmp = compare_schedulers(loop, options);
  std::printf("\n=== Fig 4(a): list scheduling ===\n%s",
              cmp.baseline.schedule.to_string(cmp.baseline.tac, 4).c_str());
  std::printf("  T_a = %lld cycles\n",
              static_cast<long long>(cmp.baseline.parallel_time()));
  std::printf("\n=== Fig 4(b): new instruction scheduling ===\n%s",
              cmp.improved.schedule.to_string(cmp.improved.tac, 4).c_str());
  std::printf("  T_b = %lld cycles\n",
              static_cast<long long>(cmp.improved.parallel_time()));
  std::printf("\nimprovement: %.2f%%\n", cmp.improvement() * 100.0);
  return 0;
}
