// Domain example: a 1-D heat-diffusion stencil with a carried
// recurrence, run as a DOACROSS loop. Shows how the sync-aware scheduler
// changes the speedup curve as processors are added, and how the LBD
// loop theorem predicts the plateau.
#include <cstdio>

#include "sbmp/core/pipeline.h"

int main() {
  using namespace sbmp;

  // u[i] depends on u[i-1] (Gauss-Seidel sweep order); the flux terms
  // are independent work that a good schedule overlaps with the
  // recurrence.
  const char* source = R"(
doacross I = 1, 100
  U[I]  = U[I-1] * alpha + S[I]
  F1[I] = S[I-1] * beta + S[I+1]
  F2[I] = F1[I] / gamma - S[I+2]
  F3[I] = F2[I] * delta + S[I-2]
  R[I]  = F3[I] + S[I] * eps
end
)";
  const Loop loop = parse_single_loop_or_throw(source);

  std::printf("heat stencil DOACROSS, 100 iterations, 4-issue\n\n");
  std::printf("%4s  %12s  %12s  %10s\n", "P", "list", "sync-aware",
              "speedup");
  std::int64_t serial = 0;
  for (const int procs : {1, 2, 4, 8, 16, 32, 64, 100}) {
    PipelineOptions options;
    options.machine = machines::paper(4, 1);
    options.iterations = 100;
    options.processors = procs;
    const SchedulerComparison cmp = compare_schedulers(loop, options);
    if (procs == 1) serial = cmp.improved.parallel_time();
    std::printf("%4d  %12lld  %12lld  %9.2fx\n", procs,
                static_cast<long long>(cmp.baseline.parallel_time()),
                static_cast<long long>(cmp.improved.parallel_time()),
                static_cast<double>(serial) /
                    static_cast<double>(cmp.improved.parallel_time()));
  }

  // The plateau: with unlimited processors the recurrence chain bounds
  // the time at (n-1) * span + l (LBD theorem, d = 1).
  PipelineOptions options;
  options.machine = machines::paper(4, 1);
  options.iterations = 100;
  const LoopReport report = run_pipeline(loop, options);
  std::printf("\nLBD theorem check: analytic lower bound %lld vs simulated"
              " %lld cycles\n",
              static_cast<long long>(
                  analytic_lower_bound(*report.dfg, report.schedule, 100,
                                       report.sim.iteration_time)),
              static_cast<long long>(report.parallel_time()));
  return 0;
}
