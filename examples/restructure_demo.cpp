// Demonstrates the paper's restructuring front half (its Fig 5 model):
// DO loops with scalar recurrences are converted into synchronizable
// DOACROSS form with induction-variable substitution, reduction
// replacement and scalar expansion, then scheduled and simulated.
#include <cstdio>

#include "sbmp/core/pipeline.h"
#include "sbmp/restructure/classify.h"

namespace {

const char* kSamples[] = {
    // Dot-product reduction.
    R"(loop dot_product
do I = 1, 100
  sum = sum + A[I] * B[I]
end)",
    // Temporary reused across iterations (expansion creates an LBD).
    R"(loop smoothing
do I = 1, 100
  B[I] = t * w1 + A[I]
  t = A[I] * w2 - B[I]
end)",
    // Induction variable driving a coefficient.
    R"(loop weighted
do I = 1, 100
  init k = 1
  k = k + 2
  C[I] = A[I] * k + B[I]
end)",
    // Everything at once.
    R"(loop mixed
do I = 1, 100
  init k = 0
  k = k + 1
  s = s + A[I] * k
  t = B[I] - s
  C[I] = t / 2
end)",
};

}  // namespace

int main() {
  using namespace sbmp;

  for (const char* source : kSamples) {
    const PreLoop pre = parse_single_pre_loop_or_throw(source);
    std::printf("=== %s ===\n%s", pre.name.c_str(),
                pre.to_string().c_str());

    const RestructureResult restructured = restructure_or_throw(pre);
    for (const auto& note : restructured.notes)
      std::printf("  pass: %s\n", note.to_string().c_str());
    std::printf("restructured:\n%s",
                restructured.loop.to_string().c_str());

    const DepAnalysis deps = analyze_dependences(restructured.loop);
    std::printf("classification: %s\n",
                doacross_types_to_string(
                    classify_doacross(restructured, deps))
                    .c_str());

    PipelineOptions options;
    options.machine = machines::paper(4, 1);
    options.iterations = 100;
    if (deps.is_doall()) {
      std::printf("loop is Doall after restructuring; runs in one "
                  "iteration time\n\n");
      continue;
    }
    const SchedulerComparison cmp =
        compare_schedulers(restructured.loop, options);
    std::printf("parallel time: list %lld, sync-aware %lld (%.1f%% "
                "improvement)\n\n",
                static_cast<long long>(cmp.baseline.parallel_time()),
                static_cast<long long>(cmp.improved.parallel_time()),
                cmp.improvement() * 100.0);
  }
  return 0;
}
