// Quickstart: compile a DOACROSS loop, schedule it with list scheduling
// and with the paper's sync-aware technique, and compare the simulated
// parallel execution times on a 4-issue superscalar multiprocessor.
#include <cstdio>

#include "sbmp/core/pipeline.h"

int main() {
  using namespace sbmp;

  // The paper's Fig 1(a) running example.
  const char* source = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

  const Loop loop = parse_single_loop_or_throw(source);

  PipelineOptions options;
  options.machine = machines::paper(/*issue_width=*/4,
                                         /*fus_per_class=*/1);
  options.iterations = 100;

  const SchedulerComparison cmp = compare_schedulers(loop, options);

  std::printf("DOACROSS loop, %lld iterations, %s\n\n",
              static_cast<long long>(options.iterations),
              options.machine.label().c_str());
  std::printf("Synchronized loop:\n%s\n",
              cmp.improved.synced.to_string().c_str());
  std::printf("Three-address code (%d instructions):\n%s\n",
              cmp.improved.tac.size(),
              cmp.improved.tac.to_string().c_str());

  std::printf("List schedule (%d groups):\n%s\n",
              cmp.baseline.schedule.length(),
              cmp.baseline.schedule
                  .to_string(cmp.baseline.tac, options.machine.issue_width)
                  .c_str());
  std::printf("Sync-aware schedule (%d groups):\n%s\n",
              cmp.improved.schedule.length(),
              cmp.improved.schedule
                  .to_string(cmp.improved.tac, options.machine.issue_width)
                  .c_str());

  std::printf("Parallel time, list scheduling      : %lld cycles\n",
              static_cast<long long>(cmp.baseline.parallel_time()));
  std::printf("Parallel time, sync-aware scheduling: %lld cycles\n",
              static_cast<long long>(cmp.improved.parallel_time()));
  std::printf("Improvement: %.2f%%\n", cmp.improvement() * 100.0);
  return 0;
}
