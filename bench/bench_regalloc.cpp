// Register-pressure study (beyond the paper, motivated by its remark on
// delayed loads and limited registers): how each scheduler's placement
// affects live-range pressure and spill cost on the suite, and whether
// the sync-aware compaction pays for its speed with registers.
#include <cstdio>

#include "bench_common.h"
#include "sbmp/regalloc/regalloc.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/table.h"

int main() {
  using namespace sbmp;
  using namespace sbmp::bench;

  const SchedulerKind kinds[] = {SchedulerKind::kInOrder,
                                 SchedulerKind::kList,
                                 SchedulerKind::kSyncBarrier,
                                 SchedulerKind::kSyncAware};

  TextTable table;
  table.set_header({"Scheduler", "avg pressure", "max pressure",
                    "spill cost K=8", "spill cost K=16", "spill cost K=24"});
  for (const auto kind : kinds) {
    PipelineOptions options;
    options.machine = machines::paper(4, 1);
    options.scheduler = kind;
    options.never_degrade = false;  // measure the raw placement
    options.iterations = 100;

    int loops = 0;
    long pressure_sum = 0;
    int pressure_max = 0;
    long spill8 = 0;
    long spill16 = 0;
    long spill24 = 0;
    for (const auto& bench : perfect_suite()) {
      for (const auto& loop : bench.program().loops) {
        const LoopReport report = run_pipeline(loop, options);
        ++loops;
        for (const int k : {8, 16, 24}) {
          const RegAllocResult r =
              allocate_registers(report.tac, report.schedule, k);
          if (k == 8) {
            pressure_sum += r.max_pressure;
            pressure_max = std::max(pressure_max, r.max_pressure);
            spill8 += r.spill_cost;
          } else if (k == 16) {
            spill16 += r.spill_cost;
          } else {
            spill24 += r.spill_cost;
          }
        }
      }
    }
    table.add_row({scheduler_name(kind),
                   format_fixed(static_cast<double>(pressure_sum) / loops, 1),
                   std::to_string(pressure_max), std::to_string(spill8),
                   std::to_string(spill16), std::to_string(spill24)});
  }

  std::printf(
      "Register pressure across schedulers (suite, 4-issue, #FU=1;\n"
      "spill cost = reloads+stores a linear-scan allocator would add\n"
      "with a K-register file)\n\n%s\n",
      table.render().c_str());
  return 0;
}
