// Parameter sweeps beyond the paper's four cases:
//   1. processors P = 1..100 for a stencil DOACROSS loop (speedup curve
//      and its knee under both schedulers);
//   2. issue width 1..8 at fixed #FU=1 for the suite total, showing the
//      paper's observation that the new scheduling is insensitive to
//      width while list scheduling is not;
//   3. dependence distance d = 1..8 for a recurrence, showing the n/d
//      factor of the LBD loop theorem.
#include <cstdio>

#include "bench_common.h"
#include "sbmp/restructure/unroll.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/table.h"

namespace {

constexpr const char* kStencil = R"(
doacross I = 1, 100
  U[I] = (U[I-1] + V[I]) * w1 + V[I+1] * w2
  R[I] = V[I-2] * w3 + V[I+2]
  Q[I] = R[I] + V[I] / w4
end
)";

}  // namespace

int main() {
  using namespace sbmp;
  using namespace sbmp::bench;

  // --- Sweep 1: processors ------------------------------------------
  {
    const Loop loop = parse_single_loop_or_throw(kStencil);
    TextTable table;
    table.set_header({"P", "list", "sync-aware", "speedup(sync-aware)"});
    std::int64_t serial = 0;
    for (const int procs : {1, 2, 4, 8, 16, 32, 64, 100}) {
      PipelineOptions options;
      options.machine = MachineConfig::paper(4, 1);
      options.iterations = 100;
      options.processors = procs;
      const SchedulerComparison cmp = compare_schedulers(loop, options);
      if (procs == 1) serial = cmp.improved.parallel_time();
      const double speedup = static_cast<double>(serial) /
                             static_cast<double>(cmp.improved.parallel_time());
      table.add_row({std::to_string(procs),
                     std::to_string(cmp.baseline.parallel_time()),
                     std::to_string(cmp.improved.parallel_time()),
                     format_fixed(speedup, 2)});
    }
    std::printf("Sweep 1: stencil loop, processors 1..100 (4-issue)\n\n%s\n",
                table.render().c_str());
  }

  // --- Sweep 2: issue width -----------------------------------------
  {
    TextTable table;
    table.set_header({"width", "Ta (list)", "Tb (sync-aware)", "Tb/Ta"});
    for (const int width : {1, 2, 3, 4, 6, 8}) {
      PipelineOptions options;
      options.machine = MachineConfig::paper(width, 1);
      options.iterations = 100;
      std::int64_t ta = 0;
      std::int64_t tb = 0;
      for (const auto& bench : perfect_suite()) {
        for (const auto& loop : bench.program().loops) {
          if (analyze_dependences(loop).is_doall()) continue;
          const SchedulerComparison cmp = compare_schedulers(loop, options);
          ta += cmp.baseline.parallel_time();
          tb += cmp.improved.parallel_time();
        }
      }
      table.add_row({std::to_string(width), std::to_string(ta),
                     std::to_string(tb),
                     format_fixed(static_cast<double>(tb) /
                                      static_cast<double>(ta),
                                  3)});
    }
    std::printf("Sweep 2: suite total vs issue width (#FU=1)\n\n%s\n",
                table.render().c_str());
  }

  // --- Sweep 3: dependence distance ---------------------------------
  {
    TextTable table;
    table.set_header({"d", "list", "sync-aware", "analytic n/d shape"});
    for (const int d : {1, 2, 3, 4, 6, 8}) {
      const std::string src = "doacross I = 1, 100\n  A[I] = A[I-" +
                              std::to_string(d) +
                              "] * w1 + B[I]\n  C[I] = B[I-1] + B[I+2] * "
                              "w2\nend\n";
      const Loop loop = parse_single_loop_or_throw(src);
      PipelineOptions options;
      options.machine = MachineConfig::paper(4, 1);
      options.iterations = 100;
      const SchedulerComparison cmp = compare_schedulers(loop, options);
      table.add_row({std::to_string(d),
                     std::to_string(cmp.baseline.parallel_time()),
                     std::to_string(cmp.improved.parallel_time()),
                     std::to_string(99 / d)});
    }
    std::printf(
        "Sweep 3: recurrence distance (LBD loop theorem's n/d factor)\n\n"
        "%s\n",
        table.render().c_str());
  }

  // --- Sweep 4: signal latency --------------------------------------
  {
    TextTable table;
    table.set_header({"signal latency", "list", "sync-aware"});
    const Loop loop = parse_single_loop_or_throw(kStencil);
    for (const int net : {1, 2, 4, 8, 16}) {
      PipelineOptions options;
      options.machine = MachineConfig::paper(4, 1);
      options.machine.signal_latency = net;
      options.iterations = 100;
      const SchedulerComparison cmp = compare_schedulers(loop, options);
      table.add_row({std::to_string(net),
                     std::to_string(cmp.baseline.parallel_time()),
                     std::to_string(cmp.improved.parallel_time())});
    }
    std::printf(
        "Sweep 4: synchronization network latency (stencil loop; every\n"
        "chain link pays the extra delay; LFD pairs stall once the\n"
        "signal outruns their slack)\n\n%s\n",
        table.render().c_str());
  }

  // --- Sweep 5: unroll factor ---------------------------------------
  {
    TextTable table;
    table.set_header({"factor", "iterations", "list", "sync-aware"});
    const Loop loop = parse_single_loop_or_throw(kStencil);
    for (const int factor : {1, 2, 4, 5, 10}) {
      const Loop unrolled = unroll_or_throw(loop, factor);
      PipelineOptions options;
      options.machine = MachineConfig::paper(4, 1);
      options.iterations = 0;  // the unrolled trip count
      const SchedulerComparison cmp = compare_schedulers(unrolled, options);
      table.add_row({std::to_string(factor),
                     std::to_string(unrolled.trip_count()),
                     std::to_string(cmp.baseline.parallel_time()),
                     std::to_string(cmp.improved.parallel_time())});
    }
    std::printf(
        "Sweep 5: unrolling the stencil DOACROSS loop (distance-1\n"
        "recurrence: each unrolled link covers `factor` elements, so the\n"
        "chain-bound time barely moves — unrolling amortizes sync\n"
        "instructions, not true dependences)\n\n%s\n",
        table.render().c_str());
  }
  return 0;
}
