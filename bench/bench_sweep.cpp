// Parameter sweeps beyond the paper's four cases:
//   1. processors P = 1..100 for a stencil DOACROSS loop (speedup curve
//      and its knee under both schedulers);
//   2. issue width 1..8 at fixed #FU=1 for the suite total, showing the
//      paper's observation that the new scheduling is insensitive to
//      width while list scheduling is not;
//   3. dependence distance d = 1..8 for a recurrence, showing the n/d
//      factor of the LBD loop theorem.
// Every sweep point is an independent pipeline, so the points fan out
// over `--jobs N` workers (0/default = hardware threads, 1 = serial)
// and are printed in sweep order; a shared ResultCache deduplicates
// repeated (loop, options) pipelines across sweeps.
//
// `--faults [N]` switches the harness into fault-campaign mode instead
// of the sweeps: it distributes at least N (default 500) seeded
// adversarial perturbation trials over the paper example, the stencil,
// and every DOACROSS loop of the Perfect suite, requiring zero
// staleness violations on the validator-clean schedules, then breaks
// the paper example with each ScheduleMutation and requires the
// validator or the fault campaign to detect every one. Exits 1 on any
// missed requirement, so the mode doubles as a CI robustness gate (see
// docs/robustness.md).
//
// `--cache-dir DIR` switches into schedule-cache benchmark mode: every
// DOACROSS loop of the corpus is compiled twice against the persistent
// cache at DIR — a cold pass that fills it and a warm pass in a fresh
// process-equivalent (new in-memory cache, same directory) that must be
// served from disk. The report shows per-loop cold/warm latency and the
// warm pass's disk hit rate, and the mode exits 1 if any warm result
// disagrees with its cold counterpart (see docs/serving.md).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sbmp/restructure/unroll.h"
#include "sbmp/serve/server.h"
#include "sbmp/sim/fault.h"
#include "sbmp/support/status.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/thread_pool.h"
#include "sbmp/support/table.h"

namespace {

// The stencil and the paper's running example (Fig. 1) live in
// bench_common.h (kCorpusStencil / kCorpusPaperExample) so this harness,
// bench_micro and the BENCH_compile.json perf report share one corpus.
constexpr const char* kStencil = sbmp::bench::kCorpusStencil;
constexpr const char* kPaperExample = sbmp::bench::kCorpusPaperExample;

/// Parses `--faults [N]`: 0 when the flag is absent (sweep mode),
/// otherwise the requested total trial count (500 when no explicit
/// count follows the flag).
int parse_faults(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") != 0) continue;
    if (i + 1 < argc && std::atoi(argv[i + 1]) > 0)
      return std::atoi(argv[i + 1]);
    return 500;
  }
  return 0;
}

using FaultTarget = sbmp::bench::CorpusLoop;

/// Parses `--cache-dir DIR`: empty when the flag is absent.
std::string parse_cache_dir(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--cache-dir") == 0) return argv[i + 1];
  return "";
}

/// The corpus both special modes share: the paper example, the stencil,
/// and every DOACROSS loop of the Perfect suite (bench_common.h).
std::vector<FaultTarget> doacross_corpus() {
  return sbmp::bench::compile_corpus();
}

/// Parses `--json PATH`: empty when the flag is absent. With the flag,
/// the harness runs the compile-perf measurement instead of the sweeps
/// and writes the machine-readable BENCH_compile.json report to PATH
/// (same format as `bench_micro --json`; see docs/perf.md).
std::string parse_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  return "";
}

/// Schedule-cache benchmark mode: cold pass fills DIR, warm pass (fresh
/// in-memory cache, same directory) must be served from disk with the
/// exact same results.
int run_cache_mode(const std::string& dir, int jobs) {
  using namespace sbmp;
  using namespace sbmp::bench;
  using clock = std::chrono::steady_clock;

  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 100;

  const std::vector<FaultTarget> targets = doacross_corpus();
  const std::size_t n = targets.size();

  // One pass over the corpus: per-loop wall latency in microseconds and
  // the parallel time the compile reported (-1 = pipeline refused).
  struct PassResult {
    std::vector<std::int64_t> micros;
    std::vector<std::int64_t> parallel_time;
    DiskCache::Stats disk;
  };
  const auto run_pass = [&](PassResult& result) {
    result.micros.assign(n, 0);
    result.parallel_time.assign(n, -1);
    DiskCache disk(dir, 256ll << 20);
    ResultCache memory;
    CachingCompiler compiler(&memory, &disk);
    parallel_for(jobs, 0, static_cast<std::int64_t>(n), [&](std::int64_t i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto start = clock::now();
      try {
        const LoopReport report = compiler.compile(targets[idx].loop, options);
        result.parallel_time[idx] = report.parallel_time();
      } catch (const StatusError&) {
        // Irregular carried dependences: nothing to cache.
      }
      result.micros[idx] = std::chrono::duration_cast<std::chrono::microseconds>(
                               clock::now() - start)
                               .count();
    });
    result.disk = disk.stats();
  };

  PassResult cold;
  run_pass(cold);
  PassResult warm;
  run_pass(warm);

  bool failed = false;
  TextTable table;
  table.set_header({"loop", "cold us", "warm us", "speedup", "verdict"});
  for (std::size_t i = 0; i < n; ++i) {
    if (cold.parallel_time[i] < 0) {
      table.add_row({targets[i].label, "-", "-", "-", "skipped"});
      continue;
    }
    const bool match = cold.parallel_time[i] == warm.parallel_time[i];
    if (!match) failed = true;
    const double speedup =
        warm.micros[i] > 0 ? static_cast<double>(cold.micros[i]) /
                                 static_cast<double>(warm.micros[i])
                           : 0.0;
    table.add_row({targets[i].label, std::to_string(cold.micros[i]),
                   std::to_string(warm.micros[i]), format_fixed(speedup, 1),
                   match ? "match" : "MISMATCH"});
  }
  const std::int64_t warm_lookups = warm.disk.hits + warm.disk.misses;
  const double hit_rate =
      warm_lookups > 0 ? 100.0 * static_cast<double>(warm.disk.hits) /
                             static_cast<double>(warm_lookups)
                       : 0.0;
  std::printf(
      "Schedule-cache benchmark: %zu DOACROSS loops against %s\n"
      "(cold fills the cache; warm uses a fresh in-memory cache over the\n"
      "same directory, so every hit is served and re-validated from disk)\n"
      "\n%s\n"
      "cold: %lld disk hits, %lld misses, %lld stores\n"
      "warm: %lld disk hits, %lld misses (hit rate %s%%), %lld re-stores\n",
      n, dir.c_str(), table.render().c_str(),
      static_cast<long long>(cold.disk.hits),
      static_cast<long long>(cold.disk.misses),
      static_cast<long long>(cold.disk.stores),
      static_cast<long long>(warm.disk.hits),
      static_cast<long long>(warm.disk.misses),
      format_fixed(hit_rate, 1).c_str(),
      static_cast<long long>(warm.disk.stores));
  if (warm.disk.hits == 0) {
    // A warm pass that never hit means the persistence layer is broken
    // even if the recompiled results happen to match.
    std::printf("warm pass served zero entries from disk\n");
    failed = true;
  }
  std::printf("cache mode: %s\n", failed ? "FAIL" : "PASS");
  return failed ? 1 : 0;
}

struct CampaignRow {
  std::string label;
  bool skipped = false;
  std::string note;
  std::size_t validation_violations = 0;
  sbmp::FaultCampaign campaign;
};

/// Fault-campaign mode: perturbation trials over every schedulable
/// DOACROSS loop, then mutation-detection on the paper example.
int run_fault_mode(int requested_trials, int jobs) {
  using namespace sbmp;
  using namespace sbmp::bench;

  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 100;

  const std::vector<FaultTarget> targets = doacross_corpus();

  // Spread the requested total over the targets, rounding up so the
  // campaign never runs fewer trials than asked for.
  const int per_loop =
      std::max(1, (requested_trials + static_cast<int>(targets.size()) - 1) /
                      static_cast<int>(targets.size()));

  std::vector<CampaignRow> rows(targets.size());
  parallel_for(jobs, 0, static_cast<std::int64_t>(targets.size()),
               [&](std::int64_t i) {
                 const FaultTarget& target =
                     targets[static_cast<std::size_t>(i)];
                 CampaignRow& row = rows[static_cast<std::size_t>(i)];
                 row.label = target.label;
                 LoopReport report;
                 try {
                   report = run_pipeline(target.loop, options);
                 } catch (const StatusError& e) {
                   // Irregular carried dependences: the paper's scheme
                   // cannot compile the loop, so there is no schedule
                   // to perturb.
                   row.skipped = true;
                   row.note = e.status().message;
                   return;
                 }
                 if (report.doall || !report.dfg.has_value()) {
                   row.skipped = true;
                   row.note = "doall";
                   return;
                 }
                 row.validation_violations =
                     report.validation_violations.size();
                 SimOptions sim_options;
                 sim_options.iterations =
                     options.resolved_iterations(report.loop);
                 sim_options.processors = options.processors;
                 std::vector<Dependence> carried;
                 for (const auto& dep : report.deps.deps)
                   if (dep.loop_carried()) carried.push_back(dep);
                 row.campaign = run_fault_campaign(
                     report.tac, *report.dfg, report.schedule,
                     options.machine, sim_options, carried,
                     FaultPlan::adversarial(
                         1 + static_cast<std::uint64_t>(i)),
                     per_loop);
               });

  bool failed = false;
  int total_trials = 0;
  std::int64_t total_fault_events = 0;
  TextTable table;
  table.set_header({"loop", "trials", "fault events", "base T", "worst T",
                    "dirty", "verdict"});
  for (const auto& row : rows) {
    if (row.skipped) {
      table.add_row({row.label, "-", "-", "-", "-", "-",
                     "skipped (" + row.note + ")"});
      continue;
    }
    // +1: run_fault_campaign always adds the unperturbed baseline run.
    total_trials += row.campaign.trials + 1;
    total_fault_events += row.campaign.fault_events;
    const bool row_ok =
        row.validation_violations == 0 && row.campaign.clean();
    if (!row_ok) failed = true;
    std::string verdict = row_ok ? "clean" : "STALE";
    if (row.validation_violations > 0) verdict = "INVALID SCHEDULE";
    table.add_row({row.label, std::to_string(row.campaign.trials + 1),
                   std::to_string(row.campaign.fault_events),
                   std::to_string(row.campaign.base_parallel_time),
                   std::to_string(row.campaign.max_parallel_time),
                   std::to_string(row.campaign.dirty_trials), verdict});
    for (const auto& msg : row.campaign.sample)
      std::printf("  %s: %s\n", row.label.c_str(), msg.c_str());
  }
  std::printf(
      "Fault campaign: %d adversarial trials over %zu DOACROSS loops\n"
      "(requested >= %d; every fault only delays events, so a correctly\n"
      "synchronized schedule must survive with zero staleness)\n\n%s\n"
      "total: %d trials, %lld injected fault events\n\n",
      total_trials, rows.size(), requested_trials, table.render().c_str(),
      total_trials, static_cast<long long>(total_fault_events));

  // --- Mutation detection: break the paper example three ways --------
  const LoopReport base =
      run_pipeline(parse_single_loop_or_throw(kPaperExample), options);
  SimOptions sim_options;
  sim_options.iterations = options.resolved_iterations(base.loop);
  sim_options.processors = options.processors;
  TextTable mtable;
  mtable.set_header(
      {"mutation", "validator violations", "dirty trials", "verdict"});
  const ScheduleMutation mutations[] = {ScheduleMutation::kHoistSend,
                                        ScheduleMutation::kSinkWait,
                                        ScheduleMutation::kDropArc};
  for (std::size_t m = 0; m < 3; ++m) {
    LoopReport mutated = base;
    if (!apply_schedule_mutation(mutations[m], mutated.tac, mutated.dfg,
                                 mutated.schedule, options.machine)) {
      mtable.add_row({mutation_name(mutations[m]), "-", "-",
                      "NOT APPLIED"});
      failed = true;
      continue;
    }
    mutated.sim = simulate(mutated.tac, *mutated.dfg, mutated.schedule,
                           options.machine, sim_options);
    const std::vector<std::string> validator =
        validate_pipeline(mutated, options);
    std::vector<Dependence> carried;
    for (const auto& dep : mutated.deps.deps)
      if (dep.loop_carried()) carried.push_back(dep);
    const FaultCampaign campaign = run_fault_campaign(
        mutated.tac, *mutated.dfg, mutated.schedule, options.machine,
        sim_options, carried, FaultPlan::adversarial(101 + m), 30);
    const bool detected = !validator.empty() || campaign.detected();
    if (!detected) failed = true;
    mtable.add_row({mutation_name(mutations[m]),
                    std::to_string(validator.size()),
                    std::to_string(campaign.dirty_trials) + "/" +
                        std::to_string(campaign.trials + 1),
                    detected ? "detected" : "MISSED"});
  }
  std::printf(
      "Mutation detection on the paper example (each mutation breaks one\n"
      "of the paper's two synchronization conditions; the validator or\n"
      "the fault campaign must flag every one)\n\n%s\n",
      mtable.render().c_str());

  std::printf("fault mode: %s\n", failed ? "FAIL" : "PASS");
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbmp;
  using namespace sbmp::bench;

  const int jobs = parse_jobs(argc, argv);
  if (const std::string json = parse_json_path(argc, argv); !json.empty()) {
    const CompilePerf perf = run_compile_perf();
    const std::string rendered = compile_perf_to_json(perf);
    std::ofstream out(json);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 2;
    }
    out << rendered;
    std::printf("%s", rendered.c_str());
    return 0;
  }
  if (const int fault_trials = parse_faults(argc, argv); fault_trials > 0)
    return run_fault_mode(fault_trials, jobs);
  if (const std::string dir = parse_cache_dir(argc, argv); !dir.empty())
    return run_cache_mode(dir, jobs);
  ResultCache cache;

  // --- Sweep 1: processors ------------------------------------------
  {
    const Loop loop = parse_single_loop_or_throw(kStencil);
    const std::vector<int> procs{1, 2, 4, 8, 16, 32, 64, 100};
    std::vector<SchedulerComparison> cmps(procs.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(procs.size()),
                 [&](std::int64_t i) {
                   PipelineOptions options;
                   options.machine = machines::paper(4, 1);
                   options.iterations = 100;
                   options.processors = procs[static_cast<std::size_t>(i)];
                   cmps[static_cast<std::size_t>(i)] =
                       compare_schedulers_cached(loop, options, &cache);
                 });
    TextTable table;
    table.set_header({"P", "list", "sync-aware", "speedup(sync-aware)"});
    const std::int64_t serial = cmps[0].improved.parallel_time();
    for (std::size_t i = 0; i < procs.size(); ++i) {
      const double speedup =
          static_cast<double>(serial) /
          static_cast<double>(cmps[i].improved.parallel_time());
      table.add_row({std::to_string(procs[i]),
                     std::to_string(cmps[i].baseline.parallel_time()),
                     std::to_string(cmps[i].improved.parallel_time()),
                     format_fixed(speedup, 2)});
    }
    std::printf("Sweep 1: stencil loop, processors 1..100 (4-issue)\n\n%s\n",
                table.render().c_str());
  }

  // --- Sweep 2: issue width -----------------------------------------
  {
    const std::vector<int> widths{1, 2, 3, 4, 6, 8};
    // Flatten (width, benchmark, loop) into independent cells.
    std::vector<Program> programs;
    for (const auto& bench : perfect_suite())
      programs.push_back(bench.program());
    struct Cell {
      std::size_t w;
      std::size_t b;
      std::size_t l;
    };
    std::vector<Cell> cells;
    for (std::size_t w = 0; w < widths.size(); ++w)
      for (std::size_t b = 0; b < programs.size(); ++b)
        for (std::size_t l = 0; l < programs[b].loops.size(); ++l)
          cells.push_back({w, b, l});
    std::vector<CasePair> partial(cells.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(cells.size()),
                 [&](std::int64_t i) {
                   const Cell& cell = cells[static_cast<std::size_t>(i)];
                   const Loop& loop = programs[cell.b].loops[cell.l];
                   if (analyze_dependences(loop).is_doall()) return;
                   PipelineOptions options;
                   options.machine =
                       machines::paper(widths[cell.w], 1);
                   options.iterations = 100;
                   const SchedulerComparison cmp =
                       compare_schedulers_cached(loop, options, &cache);
                   partial[static_cast<std::size_t>(i)] = {
                       cmp.baseline.parallel_time(),
                       cmp.improved.parallel_time()};
                 });
    std::vector<CasePair> totals(widths.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      totals[cells[i].w].ta += partial[i].ta;
      totals[cells[i].w].tb += partial[i].tb;
    }
    TextTable table;
    table.set_header({"width", "Ta (list)", "Tb (sync-aware)", "Tb/Ta"});
    for (std::size_t w = 0; w < widths.size(); ++w) {
      table.add_row({std::to_string(widths[w]),
                     std::to_string(totals[w].ta),
                     std::to_string(totals[w].tb),
                     format_fixed(static_cast<double>(totals[w].tb) /
                                      static_cast<double>(totals[w].ta),
                                  3)});
    }
    std::printf("Sweep 2: suite total vs issue width (#FU=1)\n\n%s\n",
                table.render().c_str());
  }

  // --- Sweep 3: dependence distance ---------------------------------
  {
    const std::vector<int> distances{1, 2, 3, 4, 6, 8};
    std::vector<SchedulerComparison> cmps(distances.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(distances.size()),
                 [&](std::int64_t i) {
                   const int d = distances[static_cast<std::size_t>(i)];
                   const std::string src =
                       "doacross I = 1, 100\n  A[I] = A[I-" +
                       std::to_string(d) +
                       "] * w1 + B[I]\n  C[I] = B[I-1] + B[I+2] * "
                       "w2\nend\n";
                   const Loop loop = parse_single_loop_or_throw(src);
                   PipelineOptions options;
                   options.machine = machines::paper(4, 1);
                   options.iterations = 100;
                   cmps[static_cast<std::size_t>(i)] =
                       compare_schedulers_cached(loop, options, &cache);
                 });
    TextTable table;
    table.set_header({"d", "list", "sync-aware", "analytic n/d shape"});
    for (std::size_t i = 0; i < distances.size(); ++i) {
      table.add_row({std::to_string(distances[i]),
                     std::to_string(cmps[i].baseline.parallel_time()),
                     std::to_string(cmps[i].improved.parallel_time()),
                     std::to_string(99 / distances[i])});
    }
    std::printf(
        "Sweep 3: recurrence distance (LBD loop theorem's n/d factor)\n\n"
        "%s\n",
        table.render().c_str());
  }

  // --- Sweep 4: signal latency --------------------------------------
  {
    const Loop loop = parse_single_loop_or_throw(kStencil);
    const std::vector<int> nets{1, 2, 4, 8, 16};
    std::vector<SchedulerComparison> cmps(nets.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(nets.size()),
                 [&](std::int64_t i) {
                   PipelineOptions options;
                   options.machine = machines::paper(4, 1);
                   options.machine.signal_latency =
                       nets[static_cast<std::size_t>(i)];
                   options.iterations = 100;
                   cmps[static_cast<std::size_t>(i)] =
                       compare_schedulers_cached(loop, options, &cache);
                 });
    TextTable table;
    table.set_header({"signal latency", "list", "sync-aware"});
    for (std::size_t i = 0; i < nets.size(); ++i) {
      table.add_row({std::to_string(nets[i]),
                     std::to_string(cmps[i].baseline.parallel_time()),
                     std::to_string(cmps[i].improved.parallel_time())});
    }
    std::printf(
        "Sweep 4: synchronization network latency (stencil loop; every\n"
        "chain link pays the extra delay; LFD pairs stall once the\n"
        "signal outruns their slack)\n\n%s\n",
        table.render().c_str());
  }

  // --- Sweep 5: unroll factor ---------------------------------------
  {
    const Loop loop = parse_single_loop_or_throw(kStencil);
    const std::vector<int> factors{1, 2, 4, 5, 10};
    std::vector<Loop> unrolled(factors.size());
    std::vector<SchedulerComparison> cmps(factors.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(factors.size()),
                 [&](std::int64_t i) {
                   const auto idx = static_cast<std::size_t>(i);
                   unrolled[idx] = unroll_or_throw(loop, factors[idx]);
                   PipelineOptions options;
                   options.machine = machines::paper(4, 1);
                   options.iterations = 0;  // the unrolled trip count
                   cmps[idx] = compare_schedulers_cached(unrolled[idx],
                                                         options, &cache);
                 });
    TextTable table;
    table.set_header({"factor", "iterations", "list", "sync-aware"});
    for (std::size_t i = 0; i < factors.size(); ++i) {
      table.add_row({std::to_string(factors[i]),
                     std::to_string(unrolled[i].trip_count()),
                     std::to_string(cmps[i].baseline.parallel_time()),
                     std::to_string(cmps[i].improved.parallel_time())});
    }
    std::printf(
        "Sweep 5: unrolling the stencil DOACROSS loop (distance-1\n"
        "recurrence: each unrolled link covers `factor` elements, so the\n"
        "chain-bound time barely moves — unrolling amortizes sync\n"
        "instructions, not true dependences)\n\n%s\n",
        table.render().c_str());
  }
  return 0;
}
