// Parameter sweeps beyond the paper's four cases:
//   1. processors P = 1..100 for a stencil DOACROSS loop (speedup curve
//      and its knee under both schedulers);
//   2. issue width 1..8 at fixed #FU=1 for the suite total, showing the
//      paper's observation that the new scheduling is insensitive to
//      width while list scheduling is not;
//   3. dependence distance d = 1..8 for a recurrence, showing the n/d
//      factor of the LBD loop theorem.
// Every sweep point is an independent pipeline, so the points fan out
// over `--jobs N` workers (0/default = hardware threads, 1 = serial)
// and are printed in sweep order; a shared ResultCache deduplicates
// repeated (loop, options) pipelines across sweeps.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sbmp/restructure/unroll.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/thread_pool.h"
#include "sbmp/support/table.h"

namespace {

constexpr const char* kStencil = R"(
doacross I = 1, 100
  U[I] = (U[I-1] + V[I]) * w1 + V[I+1] * w2
  R[I] = V[I-2] * w3 + V[I+2]
  Q[I] = R[I] + V[I] / w4
end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sbmp;
  using namespace sbmp::bench;

  const int jobs = parse_jobs(argc, argv);
  ResultCache cache;

  // --- Sweep 1: processors ------------------------------------------
  {
    const Loop loop = parse_single_loop_or_throw(kStencil);
    const std::vector<int> procs{1, 2, 4, 8, 16, 32, 64, 100};
    std::vector<SchedulerComparison> cmps(procs.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(procs.size()),
                 [&](std::int64_t i) {
                   PipelineOptions options;
                   options.machine = MachineConfig::paper(4, 1);
                   options.iterations = 100;
                   options.processors = procs[static_cast<std::size_t>(i)];
                   cmps[static_cast<std::size_t>(i)] =
                       compare_schedulers_cached(loop, options, &cache);
                 });
    TextTable table;
    table.set_header({"P", "list", "sync-aware", "speedup(sync-aware)"});
    const std::int64_t serial = cmps[0].improved.parallel_time();
    for (std::size_t i = 0; i < procs.size(); ++i) {
      const double speedup =
          static_cast<double>(serial) /
          static_cast<double>(cmps[i].improved.parallel_time());
      table.add_row({std::to_string(procs[i]),
                     std::to_string(cmps[i].baseline.parallel_time()),
                     std::to_string(cmps[i].improved.parallel_time()),
                     format_fixed(speedup, 2)});
    }
    std::printf("Sweep 1: stencil loop, processors 1..100 (4-issue)\n\n%s\n",
                table.render().c_str());
  }

  // --- Sweep 2: issue width -----------------------------------------
  {
    const std::vector<int> widths{1, 2, 3, 4, 6, 8};
    // Flatten (width, benchmark, loop) into independent cells.
    std::vector<Program> programs;
    for (const auto& bench : perfect_suite())
      programs.push_back(bench.program());
    struct Cell {
      std::size_t w;
      std::size_t b;
      std::size_t l;
    };
    std::vector<Cell> cells;
    for (std::size_t w = 0; w < widths.size(); ++w)
      for (std::size_t b = 0; b < programs.size(); ++b)
        for (std::size_t l = 0; l < programs[b].loops.size(); ++l)
          cells.push_back({w, b, l});
    std::vector<CasePair> partial(cells.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(cells.size()),
                 [&](std::int64_t i) {
                   const Cell& cell = cells[static_cast<std::size_t>(i)];
                   const Loop& loop = programs[cell.b].loops[cell.l];
                   if (analyze_dependences(loop).is_doall()) return;
                   PipelineOptions options;
                   options.machine =
                       MachineConfig::paper(widths[cell.w], 1);
                   options.iterations = 100;
                   const SchedulerComparison cmp =
                       compare_schedulers_cached(loop, options, &cache);
                   partial[static_cast<std::size_t>(i)] = {
                       cmp.baseline.parallel_time(),
                       cmp.improved.parallel_time()};
                 });
    std::vector<CasePair> totals(widths.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      totals[cells[i].w].ta += partial[i].ta;
      totals[cells[i].w].tb += partial[i].tb;
    }
    TextTable table;
    table.set_header({"width", "Ta (list)", "Tb (sync-aware)", "Tb/Ta"});
    for (std::size_t w = 0; w < widths.size(); ++w) {
      table.add_row({std::to_string(widths[w]),
                     std::to_string(totals[w].ta),
                     std::to_string(totals[w].tb),
                     format_fixed(static_cast<double>(totals[w].tb) /
                                      static_cast<double>(totals[w].ta),
                                  3)});
    }
    std::printf("Sweep 2: suite total vs issue width (#FU=1)\n\n%s\n",
                table.render().c_str());
  }

  // --- Sweep 3: dependence distance ---------------------------------
  {
    const std::vector<int> distances{1, 2, 3, 4, 6, 8};
    std::vector<SchedulerComparison> cmps(distances.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(distances.size()),
                 [&](std::int64_t i) {
                   const int d = distances[static_cast<std::size_t>(i)];
                   const std::string src =
                       "doacross I = 1, 100\n  A[I] = A[I-" +
                       std::to_string(d) +
                       "] * w1 + B[I]\n  C[I] = B[I-1] + B[I+2] * "
                       "w2\nend\n";
                   const Loop loop = parse_single_loop_or_throw(src);
                   PipelineOptions options;
                   options.machine = MachineConfig::paper(4, 1);
                   options.iterations = 100;
                   cmps[static_cast<std::size_t>(i)] =
                       compare_schedulers_cached(loop, options, &cache);
                 });
    TextTable table;
    table.set_header({"d", "list", "sync-aware", "analytic n/d shape"});
    for (std::size_t i = 0; i < distances.size(); ++i) {
      table.add_row({std::to_string(distances[i]),
                     std::to_string(cmps[i].baseline.parallel_time()),
                     std::to_string(cmps[i].improved.parallel_time()),
                     std::to_string(99 / distances[i])});
    }
    std::printf(
        "Sweep 3: recurrence distance (LBD loop theorem's n/d factor)\n\n"
        "%s\n",
        table.render().c_str());
  }

  // --- Sweep 4: signal latency --------------------------------------
  {
    const Loop loop = parse_single_loop_or_throw(kStencil);
    const std::vector<int> nets{1, 2, 4, 8, 16};
    std::vector<SchedulerComparison> cmps(nets.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(nets.size()),
                 [&](std::int64_t i) {
                   PipelineOptions options;
                   options.machine = MachineConfig::paper(4, 1);
                   options.machine.signal_latency =
                       nets[static_cast<std::size_t>(i)];
                   options.iterations = 100;
                   cmps[static_cast<std::size_t>(i)] =
                       compare_schedulers_cached(loop, options, &cache);
                 });
    TextTable table;
    table.set_header({"signal latency", "list", "sync-aware"});
    for (std::size_t i = 0; i < nets.size(); ++i) {
      table.add_row({std::to_string(nets[i]),
                     std::to_string(cmps[i].baseline.parallel_time()),
                     std::to_string(cmps[i].improved.parallel_time())});
    }
    std::printf(
        "Sweep 4: synchronization network latency (stencil loop; every\n"
        "chain link pays the extra delay; LFD pairs stall once the\n"
        "signal outruns their slack)\n\n%s\n",
        table.render().c_str());
  }

  // --- Sweep 5: unroll factor ---------------------------------------
  {
    const Loop loop = parse_single_loop_or_throw(kStencil);
    const std::vector<int> factors{1, 2, 4, 5, 10};
    std::vector<Loop> unrolled(factors.size());
    std::vector<SchedulerComparison> cmps(factors.size());
    parallel_for(jobs, 0, static_cast<std::int64_t>(factors.size()),
                 [&](std::int64_t i) {
                   const auto idx = static_cast<std::size_t>(i);
                   unrolled[idx] = unroll_or_throw(loop, factors[idx]);
                   PipelineOptions options;
                   options.machine = MachineConfig::paper(4, 1);
                   options.iterations = 0;  // the unrolled trip count
                   cmps[idx] = compare_schedulers_cached(unrolled[idx],
                                                         options, &cache);
                 });
    TextTable table;
    table.set_header({"factor", "iterations", "list", "sync-aware"});
    for (std::size_t i = 0; i < factors.size(); ++i) {
      table.add_row({std::to_string(factors[i]),
                     std::to_string(unrolled[i].trip_count()),
                     std::to_string(cmps[i].baseline.parallel_time()),
                     std::to_string(cmps[i].improved.parallel_time())});
    }
    std::printf(
        "Sweep 5: unrolling the stencil DOACROSS loop (distance-1\n"
        "recurrence: each unrolled link covers `factor` elements, so the\n"
        "chain-bound time barely moves — unrolling amortizes sync\n"
        "instructions, not true dependences)\n\n%s\n",
        table.render().c_str());
  }
  return 0;
}
