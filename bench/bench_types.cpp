// DOACROSS-type distribution (the taxonomy the paper cites in §4.1 from
// the Perfect-benchmark studies: control, anti/output, induction,
// reduction, simple subscript, other). Classifies every suite loop plus
// a set of pre-form loops that exercise the restructuring passes, and
// reports how the synchronized-DOACROSS types the paper evaluates
// (3, 4, 5 and part of 6) respond to the new scheduling.
#include <cstdio>
#include <map>

#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/restructure/classify.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/table.h"

namespace {

const char* kPreSamples = R"(
loop pre_reduction
do I = 1, 100
  s = s + A[I] * B[I]
end

loop pre_prefix
do I = 1, 100
  s = s + A[I]
  B[I] = s * c1
end

loop pre_induction
do I = 1, 100
  init k = 2
  k = k + 3
  C[I] = A[I] * k
end

loop pre_temp
do I = 1, 100
  B[I] = t + A[I] * c1
  t = A[I] - C[I+1]
end
)";

}  // namespace

int main() {
  using namespace sbmp;

  std::map<DoacrossType, int> counts;
  std::map<DoacrossType, std::pair<long long, long long>> times;  // Ta, Tb
  int doall = 0;

  const auto classify_and_measure = [&](const RestructureResult& r) {
    const DepAnalysis deps = analyze_dependences(r.loop);
    const auto types = classify_doacross(r, deps);
    if (types.empty()) {
      ++doall;
      return;
    }
    PipelineOptions options;
    options.machine = MachineConfig::paper(4, 1);
    options.iterations = 100;
    const SchedulerComparison cmp = compare_schedulers(r.loop, options);
    for (const auto t : types) {
      ++counts[t];
      times[t].first += cmp.baseline.parallel_time();
      times[t].second += cmp.improved.parallel_time();
    }
  };

  for (const auto& bench : perfect_suite()) {
    for (const auto& loop : bench.program().loops) {
      RestructureResult r;
      r.loop = loop;
      r.ok = true;
      classify_and_measure(r);
    }
  }
  DiagEngine diags;
  for (const auto& pre : parse_pre_program(kPreSamples, diags).loops)
    classify_and_measure(restructure_or_throw(pre));

  TextTable table;
  table.set_header({"DOACROSS type", "loops", "Ta (list)", "Tb (new)",
                    "improvement"});
  for (const auto& [type, count] : counts) {
    const auto [ta, tb] = times[type];
    table.add_row({doacross_type_name(type), std::to_string(count),
                   std::to_string(ta), std::to_string(tb),
                   format_percent(ta > 0 ? static_cast<double>(ta - tb) /
                                               static_cast<double>(ta)
                                         : 0.0)});
  }
  table.add_separator();
  table.add_row({"doall (excluded)", std::to_string(doall), "-", "-", "-"});

  std::printf(
      "DOACROSS type distribution (suite + restructured pre-form loops;\n"
      "a loop may belong to several types; 4-issue, #FU=1)\n\n%s\n",
      table.render().c_str());
  return 0;
}
