// DOACROSS-type distribution (the taxonomy the paper cites in §4.1 from
// the Perfect-benchmark studies: control, anti/output, induction,
// reduction, simple subscript, other). Classifies every suite loop plus
// a set of pre-form loops that exercise the restructuring passes, and
// reports how the synchronized-DOACROSS types the paper evaluates
// (3, 4, 5 and part of 6) respond to the new scheduling. Loops are
// measured in parallel (`--jobs N`; 0/default = hardware threads) and
// merged in deterministic loop order.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/restructure/classify.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/thread_pool.h"
#include "sbmp/support/table.h"

namespace {

const char* kPreSamples = R"(
loop pre_reduction
do I = 1, 100
  s = s + A[I] * B[I]
end

loop pre_prefix
do I = 1, 100
  s = s + A[I]
  B[I] = s * c1
end

loop pre_induction
do I = 1, 100
  init k = 2
  k = k + 3
  C[I] = A[I] * k
end

loop pre_temp
do I = 1, 100
  B[I] = t + A[I] * c1
  t = A[I] - C[I+1]
end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sbmp;
  using namespace sbmp::bench;

  // Gather every loop to classify (suite loops pass through restructuring
  // untouched; the pre-form samples actually exercise it).
  std::vector<RestructureResult> items;
  for (const auto& bench : perfect_suite()) {
    for (const auto& loop : bench.program().loops) {
      RestructureResult r;
      r.loop = loop;
      r.ok = true;
      items.push_back(std::move(r));
    }
  }
  DiagEngine diags;
  for (const auto& pre : parse_pre_program(kPreSamples, diags).loops)
    items.push_back(restructure_or_throw(pre));

  struct Measured {
    std::set<DoacrossType> types;
    long long ta = 0;
    long long tb = 0;
    bool doall = false;
  };
  std::vector<Measured> measured(items.size());
  ResultCache cache;
  parallel_for(parse_jobs(argc, argv), 0,
               static_cast<std::int64_t>(items.size()),
               [&](std::int64_t i) {
                 const auto idx = static_cast<std::size_t>(i);
                 const RestructureResult& r = items[idx];
                 const DepAnalysis deps = analyze_dependences(r.loop);
                 Measured& m = measured[idx];
                 m.types = classify_doacross(r, deps);
                 if (m.types.empty()) {
                   m.doall = true;
                   return;
                 }
                 PipelineOptions options;
                 options.machine = machines::paper(4, 1);
                 options.iterations = 100;
                 const SchedulerComparison cmp =
                     compare_schedulers_cached(r.loop, options, &cache);
                 m.ta = cmp.baseline.parallel_time();
                 m.tb = cmp.improved.parallel_time();
               });

  // Deterministic merge in loop order.
  std::map<DoacrossType, int> counts;
  std::map<DoacrossType, std::pair<long long, long long>> times;  // Ta, Tb
  int doall = 0;
  for (const auto& m : measured) {
    if (m.doall) {
      ++doall;
      continue;
    }
    for (const auto t : m.types) {
      ++counts[t];
      times[t].first += m.ta;
      times[t].second += m.tb;
    }
  }

  TextTable table;
  table.set_header({"DOACROSS type", "loops", "Ta (list)", "Tb (new)",
                    "improvement"});
  for (const auto& [type, count] : counts) {
    const auto [ta, tb] = times[type];
    table.add_row({doacross_type_name(type), std::to_string(count),
                   std::to_string(ta), std::to_string(tb),
                   format_percent(ta > 0 ? static_cast<double>(ta - tb) /
                                               static_cast<double>(ta)
                                         : 0.0)});
  }
  table.add_separator();
  table.add_row({"doall (excluded)", std::to_string(doall), "-", "-", "-"});

  std::printf(
      "DOACROSS type distribution (suite + restructured pre-form loops;\n"
      "a loop may belong to several types; 4-issue, #FU=1)\n\n%s\n",
      table.render().c_str());
  return 0;
}
