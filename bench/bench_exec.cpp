// bench_exec — predicted-vs-measured harness for the real execution
// backend (src/exec; see docs/execution.md, "Predicted vs. measured").
//
//   bench_exec [--json FILE] [--check] [--iterations N] [--seed S]
//              [--spin-ns N] [--tolerance F] [--reps N] [--jobs N]
//
// Executes the full compile corpus (paper example, stencil, Perfect
// DOACROSS loops) on live threads at {1, 2, 4, 8} workers and reports,
// per loop:
//
//  * result correctness — the final memory of every threaded run must
//    be byte-identical to a serial program-order interpretation. Any
//    divergence is an invariant violation: it is counted, printed, and
//    (with --check) fails the run. This is the hard gate.
//  * measured speedup — wall time of the 1-thread run over the
//    N-thread run (best of --reps repetitions).
//  * predicted speedup — the cycle-accurate simulator's parallel_time
//    at P=1 over P=N, plus the paper's analytic (n/d)(i-j+net)+l bound
//    at unbounded processors.
//
// Measured-vs-predicted divergence beyond --tolerance is FLAGGED in the
// output and the JSON but never fails --check: wall-clock speedup
// depends on the host (a single-core CI box measures ~1.0x at every
// thread count while the model predicts more), whereas result
// correctness must hold everywhere. The JSON artifact (BENCH_exec.json,
// schema sbmp-bench-exec-v1) records both so trajectory tooling can
// watch the gap.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sbmp/exec/executor.h"
#include "sbmp/sim/analytic.h"
#include "sbmp/sim/simulator.h"
#include "sbmp/support/strings.h"

namespace {

using namespace sbmp;
using sbmp::bench::compile_corpus;

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kNumThreadCounts = 4;

struct LoopRow {
  std::string label;
  std::uint64_t state = 0;  ///< reference memory fingerprint
  std::int64_t window = 0;
  std::int64_t sends = 0;
  std::int64_t waits = 0;
  std::int64_t blocked_waits = 0;
  std::int64_t serial_cycles = 0;    ///< simulator, P=1
  std::int64_t analytic_cycles = 0;  ///< paper bound, unbounded P
  std::int64_t predicted_cycles[kNumThreadCounts] = {};
  std::int64_t wall_ns[kNumThreadCounts] = {};
  double predicted_speedup[kNumThreadCounts] = {};
  double measured_speedup[kNumThreadCounts] = {};
  bool flagged = false;  ///< measured vs predicted beyond tolerance
  int divergences = 0;   ///< INVARIANT VIOLATIONS (byte mismatches)
  bool failed = false;   ///< a run refused to start / faulted
};

struct Cli {
  std::string json_path;
  bool check = false;
  std::int64_t iterations = 100;
  std::uint64_t seed = 0x73626d7065786563ull;
  std::int64_t spin_ns = 500;
  double tolerance = 0.5;
  int reps = 3;
};

LoopRow run_loop(const std::string& label, const LoopReport& report,
                 const Cli& cli) {
  LoopRow row;
  row.label = label;

  const LoopExecutor executor(report);
  ExecOptions options;
  options.iterations = cli.iterations;
  options.memory_seed = cli.seed;
  options.spin_ns_per_group = cli.spin_ns;

  const ExecResult reference = executor.run_reference(options);
  if (!reference.ok()) {
    std::fprintf(stderr, "bench_exec: %s: reference failed: %s\n",
                 label.c_str(), reference.status.to_string().c_str());
    row.failed = true;
    return row;
  }
  row.state = reference.fingerprint;

  // Predicted side: the cycle-accurate model at each processor count,
  // and the paper's analytic bound at one processor per iteration.
  SimOptions sim_options;
  sim_options.iterations = cli.iterations;
  sim_options.processors = 1;
  const SimResult serial = simulate(report.tac, *report.dfg, report.schedule,
                                    machines::paper(4, 2), sim_options);
  row.serial_cycles = serial.parallel_time;
  row.analytic_cycles = analytic_lower_bound(
      *report.dfg, report.schedule, cli.iterations, serial.iteration_time);
  for (int t = 0; t < kNumThreadCounts; ++t) {
    sim_options.processors = kThreadCounts[t];
    const SimResult sim = simulate(report.tac, *report.dfg, report.schedule,
                                   machines::paper(4, 2), sim_options);
    row.predicted_cycles[t] = sim.parallel_time;
    row.predicted_speedup[t] =
        sim.parallel_time > 0 ? static_cast<double>(row.serial_cycles) /
                                    static_cast<double>(sim.parallel_time)
                              : 1.0;
  }

  // Measured side: best of --reps per thread count, every run checked
  // byte-for-byte against the serial reference.
  for (int t = 0; t < kNumThreadCounts; ++t) {
    options.threads = kThreadCounts[t];
    std::int64_t best_ns = 0;
    for (int rep = 0; rep < cli.reps; ++rep) {
      const ExecResult result = executor.run(options);
      if (!result.ok()) {
        std::fprintf(stderr, "bench_exec: %s: %d-thread run failed: %s\n",
                     label.c_str(), options.threads,
                     result.status.to_string().c_str());
        row.failed = true;
        return row;
      }
      if (const Status verdict = LoopExecutor::verify(result, reference);
          !verdict.ok()) {
        ++row.divergences;
        std::fprintf(stderr,
                     "bench_exec: %s: DIVERGENCE at %d thread(s): %s\n",
                     label.c_str(), options.threads,
                     verdict.to_string().c_str());
      }
      if (best_ns == 0 || result.wall_ns < best_ns) best_ns = result.wall_ns;
      if (options.threads == 1 && rep == 0) {
        row.window = result.stats.window;
        row.sends = result.stats.sends;
        row.waits = result.stats.waits;
      }
      row.blocked_waits += result.stats.blocked_waits;
    }
    row.wall_ns[t] = best_ns;
  }
  for (int t = 0; t < kNumThreadCounts; ++t) {
    row.measured_speedup[t] =
        row.wall_ns[t] > 0 ? static_cast<double>(row.wall_ns[0]) /
                                 static_cast<double>(row.wall_ns[t])
                           : 1.0;
    // Flag (never fail) model-vs-reality gaps beyond tolerance; the
    // 1-thread point is trivially 1.0/1.0 and exempt.
    if (kThreadCounts[t] > 1 && row.predicted_speedup[t] > 0) {
      const double gap =
          (row.measured_speedup[t] - row.predicted_speedup[t]) /
          row.predicted_speedup[t];
      if (gap > cli.tolerance || gap < -cli.tolerance) row.flagged = true;
    }
  }
  return row;
}

std::string to_json(const Cli& cli, const std::vector<LoopRow>& rows,
                    int divergences, int flagged, bool passed) {
  std::string out;
  appendf(out,
          "{\n"
          "  \"schema\": \"sbmp-bench-exec-v1\",\n"
          "  \"iterations\": %lld,\n"
          "  \"seed\": %llu,\n"
          "  \"spin_ns_per_group\": %lld,\n"
          "  \"tolerance\": %.3f,\n"
          "  \"reps\": %d,\n"
          "  \"hardware_threads\": %u,\n"
          "  \"threads\": [1, 2, 4, 8],\n"
          "  \"loops\": [\n",
          static_cast<long long>(cli.iterations),
          static_cast<unsigned long long>(cli.seed),
          static_cast<long long>(cli.spin_ns), cli.tolerance, cli.reps,
          std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LoopRow& row = rows[i];
    appendf(out,
            "    {\"label\": \"%s\", \"state\": \"%016llx\", "
            "\"window\": %lld, \"sends\": %lld, \"waits\": %lld, "
            "\"serial_cycles\": %lld, \"analytic_cycles\": %lld,\n",
            row.label.c_str(), static_cast<unsigned long long>(row.state),
            static_cast<long long>(row.window),
            static_cast<long long>(row.sends),
            static_cast<long long>(row.waits),
            static_cast<long long>(row.serial_cycles),
            static_cast<long long>(row.analytic_cycles));
    const auto list_i64 = [&](const char* name, const std::int64_t* v) {
      appendf(out, "     \"%s\": [%lld, %lld, %lld, %lld],\n", name,
              static_cast<long long>(v[0]), static_cast<long long>(v[1]),
              static_cast<long long>(v[2]), static_cast<long long>(v[3]));
    };
    const auto list_f = [&](const char* name, const double* v,
                            const char* tail) {
      appendf(out, "     \"%s\": [%.4f, %.4f, %.4f, %.4f]%s\n", name, v[0],
              v[1], v[2], v[3], tail);
    };
    list_i64("predicted_cycles", row.predicted_cycles);
    list_f("predicted_speedup", row.predicted_speedup, ",");
    list_i64("wall_ns", row.wall_ns);
    list_f("measured_speedup", row.measured_speedup, ",");
    appendf(out, "     \"flagged\": %s, \"divergences\": %d}%s\n",
            row.flagged ? "true" : "false", row.divergences,
            i + 1 < rows.size() ? "," : "");
  }
  appendf(out,
          "  ],\n"
          "  \"divergences\": %d,\n"
          "  \"flagged\": %d,\n"
          "  \"check\": \"%s\"\n"
          "}\n",
          divergences, flagged, passed ? "pass" : "fail");
  return out;
}

int run(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cli.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      cli.check = true;
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      cli.iterations = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cli.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--spin-ns") == 0 && i + 1 < argc) {
      cli.spin_ns = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      cli.tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      cli.reps = std::atoi(argv[++i]);
      if (cli.reps < 1) cli.reps = 1;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      ++i;  // accepted for harness-runner uniformity; thread counts are
            // the experiment variable here
    } else {
      std::fprintf(stderr,
                   "usage: bench_exec [--json FILE] [--check] "
                   "[--iterations N] [--seed S] [--spin-ns N] "
                   "[--tolerance F] [--reps N]\n");
      return 2;
    }
  }

  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = cli.iterations;

  std::vector<LoopRow> rows;
  for (auto& target : compile_corpus()) {
    const CompileResult result = compile({target.loop, options});
    if (!result.report.dfg.has_value()) continue;
    rows.push_back(run_loop(target.label, result.report, cli));
  }

  int divergences = 0;
  int flagged = 0;
  bool failed_runs = false;
  for (const LoopRow& row : rows) {
    divergences += row.divergences;
    if (row.flagged) ++flagged;
    if (row.failed) failed_runs = true;
    std::printf(
        "bench_exec: %-24s state %016llx  predicted x%.2f/x%.2f/x%.2f "
        "(2/4/8 thr)  measured x%.2f/x%.2f/x%.2f%s%s\n",
        row.label.c_str(), static_cast<unsigned long long>(row.state),
        row.predicted_speedup[1], row.predicted_speedup[2],
        row.predicted_speedup[3], row.measured_speedup[1],
        row.measured_speedup[2], row.measured_speedup[3],
        row.flagged ? "  [FLAGGED: model gap]" : "",
        row.divergences > 0 ? "  [DIVERGED]" : "");
  }
  if (rows.empty()) {
    std::fprintf(stderr, "bench_exec: corpus compiled to nothing\n");
    failed_runs = true;
  }

  // The hard gate is correctness: every threaded run byte-identical to
  // the serial interpretation, and every run able to start. Timing
  // flags are observability, not failures (see the file comment).
  const bool passed = divergences == 0 && !failed_runs;
  if (flagged > 0)
    std::printf(
        "bench_exec: %d loop(s) flagged for measured-vs-predicted gaps "
        "beyond %.0f%% (informational; host has %u hardware threads)\n",
        flagged, cli.tolerance * 100.0, std::thread::hardware_concurrency());

  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    out << to_json(cli, rows, divergences, flagged, passed);
    if (!out.good()) {
      std::fprintf(stderr, "bench_exec: cannot write %s\n",
                   cli.json_path.c_str());
      return 2;
    }
  }
  std::printf("bench_exec: %zu loops x {1,2,4,8} threads: %s\n", rows.size(),
              passed ? "PASS (all runs byte-identical to the serial "
                       "reference)"
                     : "FAIL");
  // Like bench_serve, the run IS the gate: result divergence always
  // exits 1. --check is accepted so the CI invocation names its intent.
  (void)cli.check;
  return passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
