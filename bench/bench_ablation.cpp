// Ablation study of the design choices DESIGN.md calls out:
//   A: synchronization-path contiguity in Sigwat graphs (Section 3.2)
//   B: LBD -> LFD conversion of Sig/Wat-graph pairs (Section 3.2)
//   C: access-level redundant-wait elimination (extension)
//   D: the never-degrade list fallback (paper's "never degrades" claim)
// Each variant reports the suite total parallel time at 4-issue, #FU=1.
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/table.h"

int main() {
  using namespace sbmp;
  using namespace sbmp::bench;

  struct Variant {
    const char* name;
    std::function<void(PipelineOptions&)> tweak;
  };
  const std::vector<Variant> variants{
      {"list scheduling (baseline)",
       [](PipelineOptions& o) { o.scheduler = SchedulerKind::kList; }},
      {"in-order issue (weak baseline)",
       [](PipelineOptions& o) { o.scheduler = SchedulerKind::kInOrder; }},
      {"sync-marker barriers (ISPAN'94, ref [18])",
       [](PipelineOptions& o) { o.scheduler = SchedulerKind::kSyncBarrier; }},
      {"sync-aware, full technique", [](PipelineOptions&) {}},
      {"sync-aware, no path contiguity (A)",
       [](PipelineOptions& o) { o.sync_aware.contiguous_paths = false; }},
      {"sync-aware, no LFD conversion (B)",
       [](PipelineOptions& o) { o.sync_aware.convert_lfd = false; }},
      {"sync-aware, neither (A+B off)",
       [](PipelineOptions& o) {
         o.sync_aware.contiguous_paths = false;
         o.sync_aware.convert_lfd = false;
       }},
      {"sync-aware + redundant-wait elimination (C)",
       [](PipelineOptions& o) { o.eliminate_redundant_waits = true; }},
      {"sync-aware, no list fallback (D)",
       [](PipelineOptions& o) { o.never_degrade = false; }},
  };

  TextTable table;
  table.set_header({"Variant", "Total time", "vs list"});

  std::int64_t list_total = 0;
  for (const auto& variant : variants) {
    PipelineOptions options;
    options.machine = machines::paper(4, 1);
    options.scheduler = SchedulerKind::kSyncAware;
    options.iterations = 100;
    variant.tweak(options);

    std::int64_t total = 0;
    for (const auto& bench : perfect_suite()) {
      for (const auto& loop : bench.program().loops) {
        if (analyze_dependences(loop).is_doall()) continue;
        total += run_pipeline(loop, options).parallel_time();
      }
    }
    if (list_total == 0) list_total = total;
    const double delta =
        static_cast<double>(list_total - total) /
        static_cast<double>(list_total);
    table.add_row({variant.name, std::to_string(total),
                   format_percent(delta)});
  }

  std::printf(
      "Ablation: suite total parallel time (DOACROSS loops, 100\n"
      "iterations, 4-issue, one FU per class); 'vs list' = improvement\n"
      "over the list-scheduling baseline.\n\n%s\n",
      table.render().c_str());
  return 0;
}
