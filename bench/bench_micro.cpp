// google-benchmark microbenchmarks of the pipeline stages: parsing,
// dependence analysis, code generation, DFG construction, the two
// schedulers and the simulator. These measure the *tooling* throughput
// (the paper's tables are reproduced by the bench_table* harnesses).
#include <benchmark/benchmark.h>

#include "sbmp/codegen/codegen.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/generator.h"
#include "sbmp/perfect/suite.h"

namespace {

using namespace sbmp;

Loop test_loop(int stmts) {
  LoopGenConfig config;
  config.min_stmts = stmts;
  config.max_stmts = stmts;
  SplitMix64 rng(2026);
  return generate_random_loop(rng, config);
}

void BM_ParseSuite(benchmark::State& state) {
  const auto& bench = perfect_suite()[static_cast<std::size_t>(
      state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.program());
  }
}
BENCHMARK(BM_ParseSuite)->DenseRange(0, 4);

void BM_DependenceAnalysis(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_dependences(loop));
  }
}
BENCHMARK(BM_DependenceAnalysis)->Arg(2)->Arg(4)->Arg(8);

void BM_Codegen(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  const SyncedLoop synced = insert_synchronization(loop);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_tac(synced));
  }
}
BENCHMARK(BM_Codegen)->Arg(2)->Arg(4)->Arg(8);

void BM_DfgBuild(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  const TacFunction tac = generate_tac(insert_synchronization(loop));
  const MachineConfig config = MachineConfig::paper(4, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dfg(tac, config));
  }
}
BENCHMARK(BM_DfgBuild)->Arg(2)->Arg(4)->Arg(8);

void BM_ListScheduler(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  const TacFunction tac = generate_tac(insert_synchronization(loop));
  const MachineConfig config = MachineConfig::paper(4, 1);
  const Dfg dfg(tac, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_list(tac, dfg, config));
  }
}
BENCHMARK(BM_ListScheduler)->Arg(2)->Arg(4)->Arg(8);

void BM_SyncAwareScheduler(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  const TacFunction tac = generate_tac(insert_synchronization(loop));
  const MachineConfig config = MachineConfig::paper(4, 1);
  const Dfg dfg(tac, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_sync_aware(tac, dfg, config, 100));
  }
}
BENCHMARK(BM_SyncAwareScheduler)->Arg(2)->Arg(4)->Arg(8);

void BM_Simulator(benchmark::State& state) {
  const Loop loop = test_loop(4);
  const TacFunction tac = generate_tac(insert_synchronization(loop));
  const MachineConfig config = MachineConfig::paper(4, 1);
  const Dfg dfg(tac, config);
  const Schedule schedule = schedule_sync_aware(tac, dfg, config, 100);
  SimOptions options;
  options.iterations = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(tac, dfg, schedule, config, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Simulator)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FullPipeline(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  PipelineOptions options;
  options.iterations = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(loop, options));
  }
}
BENCHMARK(BM_FullPipeline)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
