// google-benchmark microbenchmarks of the pipeline stages: parsing,
// dependence analysis, code generation, DFG construction, the two
// schedulers and the simulator. These measure the *tooling* throughput
// (the paper's tables are reproduced by the bench_table* harnesses).
//
// Every compile-path benchmark also reports "allocs" — heap allocations
// per iteration, counted by the operator-new interposer in
// bench_common.h — so data-structure wins (arena, CSR) are visible next
// to the nanoseconds.
//
// Beyond the google-benchmark registry, this binary is the perf-
// trajectory harness behind BENCH_compile.json (docs/perf.md):
//   bench_micro --json BENCH_compile.json   # measure + write the report
//   bench_micro --check BENCH_compile.json  # CI mode: assert no schedule
//                                           # drift, a generous throughput
//                                           # floor, the jobs8/jobs1
//                                           # scaling gate (tunable via
//                                           # --scaling-floor R), and the
//                                           # fallback-phase latency budget
//                                           # (overridable via
//                                           # --fallback-budget-ns N)
#define SBMP_ALLOC_COUNTER 1

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sbmp/codegen/codegen.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/generator.h"
#include "sbmp/perfect/suite.h"

namespace {

using namespace sbmp;

Loop test_loop(int stmts) {
  LoopGenConfig config;
  config.min_stmts = stmts;
  config.max_stmts = stmts;
  SplitMix64 rng(2026);
  return generate_random_loop(rng, config);
}

/// Attaches an "allocs" counter: heap allocations per benchmark
/// iteration over the timed region.
class AllocScope {
 public:
  explicit AllocScope(benchmark::State& state)
      : state_(state),
        start_(bench::alloc_counters().count.load(
            std::memory_order_relaxed)) {}
  ~AllocScope() {
    const std::uint64_t total =
        bench::alloc_counters().count.load(std::memory_order_relaxed) -
        start_;
    state_.counters["allocs"] = benchmark::Counter(
        static_cast<double>(total), benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  std::uint64_t start_;
};

void BM_ParseSuite(benchmark::State& state) {
  const auto& bench = perfect_suite()[static_cast<std::size_t>(
      state.range(0))];
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.program());
  }
}
BENCHMARK(BM_ParseSuite)->DenseRange(0, 4);

void BM_DependenceAnalysis(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_dependences(loop));
  }
}
BENCHMARK(BM_DependenceAnalysis)->Arg(2)->Arg(4)->Arg(8);

void BM_Codegen(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  const SyncedLoop synced = insert_synchronization(loop);
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_tac(synced));
  }
}
BENCHMARK(BM_Codegen)->Arg(2)->Arg(4)->Arg(8);

void BM_DfgBuild(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  const TacFunction tac = generate_tac(insert_synchronization(loop));
  const MachineDesc config = machines::paper(4, 1);
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dfg(tac, config));
  }
}
BENCHMARK(BM_DfgBuild)->Arg(2)->Arg(4)->Arg(8);

void BM_ListScheduler(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  const TacFunction tac = generate_tac(insert_synchronization(loop));
  const MachineDesc config = machines::paper(4, 1);
  const Dfg dfg(tac, config);
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_list(tac, dfg, config));
  }
}
BENCHMARK(BM_ListScheduler)->Arg(2)->Arg(4)->Arg(8);

void BM_SyncAwareScheduler(benchmark::State& state) {
  const Loop loop = test_loop(static_cast<int>(state.range(0)));
  const TacFunction tac = generate_tac(insert_synchronization(loop));
  const MachineDesc config = machines::paper(4, 1);
  const Dfg dfg(tac, config);
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_sync_aware(tac, dfg, config, 100));
  }
}
BENCHMARK(BM_SyncAwareScheduler)->Arg(2)->Arg(4)->Arg(8);

void BM_Simulator(benchmark::State& state) {
  const Loop loop = test_loop(4);
  const TacFunction tac = generate_tac(insert_synchronization(loop));
  const MachineDesc config = machines::paper(4, 1);
  const Dfg dfg(tac, config);
  const Schedule schedule = schedule_sync_aware(tac, dfg, config, 100);
  SimOptions options;
  options.iterations = state.range(0);
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(tac, dfg, schedule, config, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Simulator)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FullPipeline(benchmark::State& state) {
  PipelineOptions options;
  options.iterations = 100;
  const CompileRequest request{test_loop(static_cast<int>(state.range(0))),
                               options};
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile(request));
  }
}
BENCHMARK(BM_FullPipeline)->Arg(2)->Arg(8);

void BM_ResultCacheHit(benchmark::State& state) {
  const Loop loop = test_loop(4);
  PipelineOptions options;
  options.iterations = 100;
  ResultCache cache;
  const std::string key = ResultCache::key(loop, options);
  (void)compile({loop, options}, &cache);
  AllocScope allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key));
  }
}
BENCHMARK(BM_ResultCacheHit);

}  // namespace

int main(int argc, char** argv) {
  // < 0 = derive the jobs8/jobs1 gate from this machine's core count
  // (2.5x on the 8-core CI runner; see bench::default_scaling_floor),
  // and the fallback budget from the pre-cutoff anchor (see
  // bench::kPrePrFallbackP50Ns).
  double scaling_floor = -1.0;
  std::int64_t fallback_budget_ns = -1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling-floor") == 0)
      scaling_floor = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--fallback-budget-ns") == 0)
      fallback_budget_ns = std::atoll(argv[i + 1]);
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const sbmp::bench::CompilePerf perf = sbmp::bench::run_compile_perf();
      const std::string json = sbmp::bench::compile_perf_to_json(perf);
      std::ofstream out(argv[i + 1]);
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", argv[i + 1]);
        return 2;
      }
      out << json;
      std::printf("%s", json.c_str());
      return 0;
    }
    if (std::strcmp(argv[i], "--check") == 0) {
      return sbmp::bench::check_compile_perf(
          sbmp::bench::run_compile_perf(), argv[i + 1], scaling_floor,
          fallback_budget_ns);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
