// bench_archsweep — the architecture sweep lab (docs/machines.md).
//
// Compiles the full compile-perf corpus at every point of a grid of
// MachineDescs and emits a comparative report: per-machine IPC, total
// parallel time, worst LBD sync span, never-degrade fallback rate,
// redundant waits eliminated, and speedup against the paper's baseline
// machine. The paper's four-machine table (issue {2,4} x FUs {1,2}) is
// the `buf=0` slice of the default grid; the signal-buffer-depth axis
// is the sweep the paper never ran.
//
//   bench_archsweep                          # default grid, table to stdout
//   bench_archsweep --grid "issue=2,4 buf=0,4" --json BENCH_archsweep.json
//   bench_archsweep --check [BENCH_compile.json]
//                       # CI mode: the 4-point paper grid; fails on empty
//                       # or non-finite metrics, or when the 4-issue(#FU=2)
//                       # point's corpus fingerprint drifts from the one
//                       # recorded in BENCH_compile.json
//
// Grid spec: whitespace-separated axes `name=v1,v2,...` over the default
// machine; every axis multiplies the grid. Axes: issue (width), fu
// (uniform units per class), sig (signal latency), buf (signal buffer
// depth), sync (0/1), lat.<opcode> or lat.* (latency table entries).

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sbmp/sim/analytic.h"
#include "sbmp/support/table.h"

using namespace sbmp;
using bench::CorpusLoop;

namespace {

struct Axis {
  std::string name;
  std::vector<int> values;
};

/// Parses "issue=2,4 fu=1,2 buf=0,2" into axes; returns false (with a
/// message on stderr) on malformed input.
bool parse_grid(const std::string& spec, std::vector<Axis>* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    while (pos < spec.size() && std::isspace(static_cast<unsigned char>(
                                    spec[pos])))
      ++pos;
    if (pos >= spec.size()) break;
    std::size_t end = pos;
    while (end < spec.size() && !std::isspace(static_cast<unsigned char>(
                                    spec[end])))
      ++end;
    const std::string token = spec.substr(pos, end - pos);
    pos = end;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      std::fprintf(stderr, "bad grid axis \"%s\" (want name=v1,v2,...)\n",
                   token.c_str());
      return false;
    }
    Axis axis;
    axis.name = token.substr(0, eq);
    std::size_t p = eq + 1;
    while (p <= token.size()) {
      std::size_t comma = token.find(',', p);
      if (comma == std::string::npos) comma = token.size();
      const std::string v = token.substr(p, comma - p);
      char* endp = nullptr;
      const long value = std::strtol(v.c_str(), &endp, 10);
      if (v.empty() || endp == nullptr || *endp != '\0') {
        std::fprintf(stderr, "bad grid value \"%s\" in axis %s\n", v.c_str(),
                     axis.name.c_str());
        return false;
      }
      axis.values.push_back(static_cast<int>(value));
      if (comma == token.size()) break;
      p = comma + 1;
    }
    out->push_back(std::move(axis));
  }
  return true;
}

/// Applies one axis value to a machine. Returns false on an unknown
/// axis name.
bool apply_axis(MachineDesc* machine, const std::string& name, int value) {
  if (name == "issue") {
    machine->issue_width = value;
  } else if (name == "fu") {
    machine->fu_counts.fill(value);
  } else if (name == "sig") {
    machine->signal_latency = value;
  } else if (name == "buf") {
    machine->signal_buffer_depth = value;
  } else if (name == "sync") {
    machine->sync_consumes_slot = value != 0;
  } else if (name.rfind("lat.", 0) == 0) {
    const std::string op_name = name.substr(4);
    if (op_name == "*") {
      machine->latencies.fill(value);
      return true;
    }
    for (int op = 0; op < kNumOpcodes; ++op) {
      if (op_name == opcode_name(static_cast<Opcode>(op))) {
        machine->set_latency(static_cast<Opcode>(op), value);
        return true;
      }
    }
    std::fprintf(stderr, "unknown opcode \"%s\" in axis %s\n",
                 op_name.c_str(), name.c_str());
    return false;
  } else {
    std::fprintf(stderr, "unknown grid axis \"%s\"\n", name.c_str());
    return false;
  }
  return true;
}

/// Everything the report records about one grid point.
struct MachineMetrics {
  MachineDesc machine;
  std::string fingerprint;
  int loops = 0;
  int failures = 0;
  std::int64_t total_parallel_time = 0;
  std::int64_t instructions = 0;  ///< issued across all loops x iterations
  double ipc = 0.0;
  int lbd_span_max = 0;
  double fallback_rate = 0.0;
  int waits_eliminated = 0;
  double speedup_vs_baseline = 0.0;
};

constexpr std::int64_t kIterations = 100;  // the paper's per-loop count

PipelineOptions sweep_options(const MachineDesc& machine) {
  // Everything but the machine stays at the pipeline defaults so the
  // 4-issue(#FU=2) point compiles exactly what bench_micro fingerprints.
  PipelineOptions options;
  options.machine = machine;
  options.iterations = kIterations;
  return options;
}

/// Compiles the corpus on `machine` and aggregates the report metrics.
/// `jobs` feeds the batch facade's fan-out; `cache` is shared across the
/// whole grid so identical (loop, machine) cells are deduplicated.
MachineMetrics measure_machine(const MachineDesc& machine,
                               const std::vector<CorpusLoop>& corpus,
                               int jobs, ResultCache* cache) {
  MachineMetrics metrics;
  metrics.machine = machine;
  const PipelineOptions options = sweep_options(machine);

  std::vector<CompileRequest> requests;
  requests.reserve(corpus.size());
  for (const auto& target : corpus) requests.push_back({target.loop, options});
  CompileBatchOptions batch;
  batch.jobs = jobs;
  const ProgramReport report = compile(requests, batch, cache);

  metrics.failures = static_cast<int>(report.failures.size());
  metrics.total_parallel_time = report.total_parallel_time;
  int fallbacks = 0;
  for (const LoopReport& loop : report.loops) {
    if (!loop.status.ok() || !loop.dfg.has_value()) continue;
    ++metrics.loops;
    metrics.instructions +=
        static_cast<std::int64_t>(loop.tac.size()) * kIterations;
    if (loop.used_list_fallback) ++fallbacks;
    metrics.lbd_span_max = std::max(
        metrics.lbd_span_max, worst_sync_span(*loop.dfg, loop.schedule));
  }
  if (metrics.loops > 0)
    metrics.fallback_rate =
        static_cast<double>(fallbacks) / static_cast<double>(metrics.loops);
  if (metrics.total_parallel_time > 0)
    metrics.ipc = static_cast<double>(metrics.instructions) /
                  static_cast<double>(metrics.total_parallel_time);

  // Redundant-wait elimination is off in the fingerprinted pass (it is
  // off in the pipeline defaults); a second batch with the pass enabled
  // reports how many waits this machine's schedules can shed.
  PipelineOptions eliminate_options = options;
  eliminate_options.eliminate_redundant_waits = true;
  std::vector<CompileRequest> eliminate_requests;
  eliminate_requests.reserve(corpus.size());
  for (const auto& target : corpus)
    eliminate_requests.push_back({target.loop, eliminate_options});
  const ProgramReport eliminated =
      compile(eliminate_requests, batch, cache);
  for (const LoopReport& loop : eliminated.loops)
    if (loop.status.ok()) metrics.waits_eliminated += loop.waits_eliminated;

  // Fingerprint from a serial pass over the same cache: all hits, and
  // the hash order matches bench_micro's byte for byte.
  std::vector<CorpusLoop> kept = corpus;
  metrics.fingerprint = bench::fingerprint_corpus(&kept, options, cache);
  return metrics;
}

std::string machines_to_json(const std::string& grid,
                             const MachineMetrics& baseline,
                             const std::vector<MachineMetrics>& points) {
  std::string out;
  appendf(out,
          "{\n"
          "  \"schema\": \"sbmp-bench-archsweep-v1\",\n"
          "  \"grid\": \"%s\",\n"
          "  \"iterations\": %lld,\n"
          "  \"baseline\": {\"machine\": \"%s\", \"total_parallel_time\": "
          "%lld},\n"
          "  \"machines\": [",
          grid.c_str(), static_cast<long long>(kIterations),
          baseline.machine.to_string().c_str(),
          static_cast<long long>(baseline.total_parallel_time));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const MachineMetrics& m = points[i];
    appendf(out,
            "%s\n    {\"label\": \"%s\", \"machine\": \"%s\",\n"
            "     \"loops\": %d, \"failures\": %d,\n"
            "     \"total_parallel_time\": %lld, \"instructions\": %lld, "
            "\"ipc\": %.3f,\n"
            "     \"lbd_span_max\": %d, \"fallback_rate\": %.3f, "
            "\"waits_eliminated\": %d,\n"
            "     \"speedup_vs_baseline\": %.3f, "
            "\"schedule_fingerprint\": \"%s\"}",
            i == 0 ? "" : ",", m.machine.label().c_str(),
            m.machine.to_string().c_str(), m.loops, m.failures,
            static_cast<long long>(m.total_parallel_time),
            static_cast<long long>(m.instructions), m.ipc, m.lbd_span_max,
            m.fallback_rate, m.waits_eliminated, m.speedup_vs_baseline,
            m.fingerprint.c_str());
  }
  appendf(out, "\n  ]\n}\n");
  return out;
}

void print_table(const MachineMetrics& baseline,
                 const std::vector<MachineMetrics>& points) {
  TextTable table;
  table.set_header({"machine", "buf", "sig", "IPC", "total cycles",
                    "speedup", "LBD span", "fallback%", "waits-elim"});
  for (const MachineMetrics& m : points) {
    char ipc[32], speedup[32], fallback[32];
    std::snprintf(ipc, sizeof ipc, "%.3f", m.ipc);
    std::snprintf(speedup, sizeof speedup, "%.3f", m.speedup_vs_baseline);
    std::snprintf(fallback, sizeof fallback, "%.1f", m.fallback_rate * 100.0);
    table.add_row({m.machine.label(),
                   std::to_string(m.machine.signal_buffer_depth),
                   std::to_string(m.machine.signal_latency), ipc,
                   std::to_string(m.total_parallel_time), speedup,
                   std::to_string(m.lbd_span_max), fallback,
                   std::to_string(m.waits_eliminated)});
  }
  std::printf("Corpus-wide architecture sweep (%lld iterations per loop, "
              "baseline %s):\n%s",
              static_cast<long long>(kIterations),
              baseline.machine.label().c_str(), table.render().c_str());
}

/// CI smoke: the paper's four machines must produce non-empty, finite
/// metrics, and the machine bench_micro fingerprints (4-issue, #FU=2)
/// must reproduce the fingerprint recorded in BENCH_compile.json.
int check_sweep(const std::vector<MachineMetrics>& points,
                const std::string& compile_json_path) {
  std::ifstream in(compile_json_path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read %s\n", compile_json_path.c_str());
    return 2;
  }
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string stored_fp;
  if (!bench::json_field(json, "schedule_fingerprint", &stored_fp)) {
    std::fprintf(stderr, "%s is not a BENCH_compile.json\n",
                 compile_json_path.c_str());
    return 2;
  }
  bool failed = false;
  bool pinned_point_seen = false;
  const MachineDesc pinned = machines::paper(4, 2);
  for (const MachineMetrics& m : points) {
    const std::string label = m.machine.label();
    if (m.loops <= 0 || m.failures > 0) {
      std::fprintf(stderr, "EMPTY SWEEP: %s compiled %d loops, %d failures\n",
                   label.c_str(), m.loops, m.failures);
      failed = true;
    }
    if (!(m.ipc > 0.0) || !std::isfinite(m.ipc) ||
        m.total_parallel_time <= 0) {
      std::fprintf(stderr, "BAD METRICS: %s ipc=%f total=%" PRId64 "\n",
                   label.c_str(), m.ipc, m.total_parallel_time);
      failed = true;
    }
    if (m.machine == pinned) {
      pinned_point_seen = true;
      if (m.fingerprint != stored_fp) {
        std::fprintf(stderr,
                     "SCHEDULE DRIFT: %s fingerprint %s vs recorded %s\n",
                     label.c_str(), m.fingerprint.c_str(), stored_fp.c_str());
        failed = true;
      }
    }
  }
  if (!pinned_point_seen) {
    std::fprintf(stderr, "check grid is missing the 4-issue(#FU=2) point\n");
    failed = true;
  }
  std::printf("archsweep check: %zu machines, pinned fingerprint %s — %s\n",
              points.size(), stored_fp.c_str(), failed ? "FAIL" : "PASS");
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid = "issue=2,4 fu=1,2 buf=0,2";
  std::string json_path;
  std::string check_path;
  bool check = false;
  const int jobs = sbmp::bench::parse_jobs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
      grid = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
      check_path = "BENCH_compile.json";
      if (i + 1 < argc && argv[i + 1][0] != '-') check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      ++i;  // consumed by parse_jobs
    } else {
      std::fprintf(stderr,
                   "usage: bench_archsweep [--grid SPEC] [--json FILE] "
                   "[--jobs N] [--check [BENCH_compile.json]]\n");
      return 2;
    }
  }
  if (check) grid = "issue=2,4 fu=1,2";  // the paper's four machines

  std::vector<Axis> axes;
  if (!parse_grid(grid, &axes) || axes.empty()) return 2;

  // Cartesian product in axis order (first axis varies slowest).
  std::vector<MachineDesc> machines_list{machines::default_machine()};
  for (const Axis& axis : axes) {
    std::vector<MachineDesc> next;
    next.reserve(machines_list.size() * axis.values.size());
    for (const MachineDesc& base : machines_list) {
      for (const int value : axis.values) {
        MachineDesc machine = base;
        if (!apply_axis(&machine, axis.name, value)) return 2;
        next.push_back(machine);
      }
    }
    machines_list = std::move(next);
  }
  for (const MachineDesc& machine : machines_list) {
    if (Status status = machine.validate(); !status.ok()) {
      std::fprintf(stderr, "invalid grid machine \"%s\": %s\n",
                   machine.to_string().c_str(), status.message.c_str());
      return 2;
    }
  }

  const std::vector<CorpusLoop> corpus = sbmp::bench::compile_corpus();
  ResultCache cache;
  const MachineMetrics baseline = measure_machine(
      machines::default_machine(), corpus, jobs, &cache);
  std::vector<MachineMetrics> points;
  points.reserve(machines_list.size());
  for (const MachineDesc& machine : machines_list) {
    MachineMetrics metrics = measure_machine(machine, corpus, jobs, &cache);
    if (metrics.total_parallel_time > 0 && baseline.total_parallel_time > 0)
      metrics.speedup_vs_baseline =
          static_cast<double>(baseline.total_parallel_time) /
          static_cast<double>(metrics.total_parallel_time);
    points.push_back(std::move(metrics));
  }

  if (check) return check_sweep(points, check_path);
  print_table(baseline, points);
  const std::string json = machines_to_json(grid, baseline, points);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << json;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
