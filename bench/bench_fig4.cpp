// Reproduces the paper's Fig 4: the running example of Fig 1 scheduled
// with list scheduling (a) and the new technique (b) on a 4-issue
// machine with one unit per class, with the parallel-time expressions
// the paper derives ((12N)+13 vs (N/2)*7+13 for its 27-instruction
// listing; ours is the unfused 28-instruction body, same shape).
#include <cstdio>

#include "sbmp/core/pipeline.h"

int main() {
  using namespace sbmp;

  const char* source = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";
  const Loop loop = parse_single_loop_or_throw(source);

  PipelineOptions options;
  options.machine = machines::paper(4, 1);
  options.iterations = 100;
  const SchedulerComparison cmp = compare_schedulers(loop, options);

  const auto describe = [&](const char* title, const LoopReport& r) {
    std::printf("%s (%d groups):\n%s\n", title, r.schedule.length(),
                r.schedule.to_string(r.tac, options.machine.issue_width)
                    .c_str());
    // Derive the paper's closed-form expression from the worst pair.
    std::int64_t worst_term = 0;
    std::int64_t worst_span = 0;
    std::int64_t worst_d = 1;
    for (const auto& pair : r.dfg->pairs()) {
      const int span = r.schedule.slot(pair.send_instr) -
                       r.schedule.slot(pair.wait_instr) + 1;
      const std::int64_t term =
          span > 0 ? (99 / pair.distance) * span : 0;
      if (term > worst_term) {
        worst_term = term;
        worst_span = span;
        worst_d = pair.distance;
      }
    }
    if (worst_term > 0) {
      std::printf("  worst pair: span %lld, distance %lld ->"
                  " T = (N/%lld)*%lld + %lld\n",
                  static_cast<long long>(worst_span),
                  static_cast<long long>(worst_d),
                  static_cast<long long>(worst_d),
                  static_cast<long long>(worst_span),
                  static_cast<long long>(r.sim.iteration_time));
    } else {
      std::printf("  all pairs LFD -> T = %lld\n",
                  static_cast<long long>(r.sim.iteration_time));
    }
    std::printf("  simulated parallel time, N=100: %lld cycles\n\n",
                static_cast<long long>(r.parallel_time()));
  };

  std::printf("Fig 4: Scheduling results for the Fig 1 example, %s\n\n",
              options.machine.label().c_str());
  describe("(a) list scheduling", cmp.baseline);
  describe("(b) new instruction scheduling", cmp.improved);
  std::printf("improvement: %.2f%%  (paper example: 1213 -> 363 cycles)\n",
              cmp.improvement() * 100.0);
  return 0;
}
