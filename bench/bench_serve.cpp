// bench_serve — serving-path robustness harness (the network chaos
// campaign behind BENCH_serve.json; see docs/serving.md, "Failure modes
// & degradation").
//
//   bench_serve [--chaos N] [--seed S] [--json FILE] [--jobs N]
//
// Two campaigns, both deterministic in --seed:
//
//  * Chaos: N request round-trips through a real socketpair where the
//    client side is wrapped in FaultyTransport — seeded stalls,
//    truncated frames, mid-frame disconnects, bit corruption, short
//    transfers — against a live serve_session. The invariant asserted
//    for EVERY trial: the request either returns a byte-identical
//    validated schedule or a typed Status. Never a hang (every
//    operation runs under a Deadline, and a watchdog clock checks the
//    trial wall time), never a crash, never wrong bytes.
//
//  * Overload: a thread herd hammers one admission-controlled server
//    with more concurrency than --max-inflight allows. Asserts load is
//    actually shed (typed kOverloaded), successes still complete
//    byte-identically, and the tallies add up — no request vanishes.
//
// Exit code 0 when every invariant held, 1 otherwise. CI runs
// `bench_serve --chaos 300 --json BENCH_serve.json` and diffs nothing:
// the run IS the gate; the JSON is an observability artifact (shed /
// retry / timeout counters beside the perf seeds).
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sbmp/serve/admission.h"
#include "sbmp/serve/client.h"
#include "sbmp/serve/codec.h"
#include "sbmp/serve/protocol.h"
#include "sbmp/serve/server.h"
#include "sbmp/serve/session.h"
#include "sbmp/serve/transport.h"
#include "sbmp/support/deadline.h"
#include "sbmp/support/rng.h"

namespace {

using namespace sbmp;
using sbmp::bench::compile_corpus;
using sbmp::bench::CorpusLoop;

struct ChaosTally {
  std::int64_t ok_identical = 0;   ///< validated, byte-identical response
  std::int64_t typed_errors = 0;   ///< clean Status (any failure class)
  std::int64_t wrong_bytes = 0;    ///< INVARIANT VIOLATION
  std::int64_t hangs = 0;          ///< INVARIANT VIOLATION (watchdog)
  std::int64_t by_code[9] = {};    ///< typed errors by StatusCode
  FaultyTransport::Injected injected;
};

struct OverloadTally {
  std::int64_t requests = 0;
  std::int64_t ok = 0;
  std::int64_t shed = 0;
  std::int64_t timeout = 0;
  std::int64_t other = 0;
};

/// Golden artifacts: for every corpus loop, the exact response payload a
/// healthy daemon must produce (the same bytes the disk cache stores).
struct Golden {
  Loop loop;
  std::string label;
  std::string request;   ///< encoded compile request (no deadline field set)
  std::string report;    ///< encoded LoopReport payload
};

/// One chaos trial: a full request round-trip over a socketpair with a
/// fault-injecting client transport. Returns false only on an invariant
/// violation (wrong bytes / hang); typed failures are the expected
/// currency of the campaign.
bool chaos_trial(ScheduleServer& server, const Golden& golden,
                 const PipelineOptions& options, std::uint64_t seed,
                 ChaosTally& tally) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    std::fprintf(stderr, "bench_serve: socketpair failed\n");
    return false;
  }

  // Server side: the daemon's exact per-connection loop, with the
  // hardened budgets a production sbmpd runs under (scaled down so a
  // stalled trial resolves in ms, not the 10 s default).
  SessionLimits limits;
  limits.io_timeout_ms = 1000;
  limits.idle_timeout_ms = 1000;
  std::thread server_thread([&server, &limits, fd = sv[1]] {
    FdTransport transport(fd);
    (void)serve_session(server, nullptr, transport, limits);
    ::close(fd);
  });

  const auto t0 = std::chrono::steady_clock::now();
  FdTransport inner(sv[0]);
  FaultyTransport faulty(inner, NetFaults::chaos(), seed);
  const Deadline deadline = Deadline::after_ms(2000);

  Status outcome;
  bool ok_bytes = false;
  Frame frame;
  Status s = write_frame(faulty, FrameType::kCompileRequest, golden.request,
                         deadline);
  if (s.ok()) s = read_frame(faulty, &frame, deadline);
  if (s.ok() && frame.type != FrameType::kCompileResponse)
    s = Status::error(StatusCode::kInternal, "protocol",
                      "unexpected frame type");
  std::string report_payload;
  if (s.ok()) {
    Status remote_status;
    s = decode_compile_response(frame.payload, &remote_status,
                                &report_payload);
    if (s.ok()) s = remote_status;
  }
  if (s.ok()) {
    // Trust-but-verify exactly like the real client, then the chaos
    // harness's stronger check: the payload must be byte-identical to
    // the golden local artifact.
    LoopReport report;
    const Fingerprint fp = schedule_fingerprint(golden.loop, options);
    if (Status ds =
            decode_loop_report(report_payload, options, fp, &report);
        !ds.ok()) {
      s = Status::error(StatusCode::kInternal, "remote", ds.message);
    } else if (report_payload != golden.report) {
      ++tally.wrong_bytes;
      std::fprintf(stderr,
                   "bench_serve: WRONG BYTES for %s (seed %llu): response "
                   "validated but differs from the local artifact\n",
                   golden.label.c_str(),
                   static_cast<unsigned long long>(seed));
    } else {
      ok_bytes = true;
    }
  }
  outcome = s;

  ::close(sv[0]);
  server_thread.join();

  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  if (elapsed_ms > 8000) {
    // Every operation above carries a <=2 s deadline; blowing far past
    // it means some path blocked unboundedly — the exact bug class this
    // harness exists to catch.
    ++tally.hangs;
    std::fprintf(stderr, "bench_serve: HANG: trial seed %llu took %lld ms\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<long long>(elapsed_ms));
    return false;
  }
  if (ok_bytes) {
    ++tally.ok_identical;
  } else if (outcome.ok()) {
    // ok status but not identical — counted above as wrong_bytes.
  } else {
    ++tally.typed_errors;
    const int code = static_cast<int>(outcome.code);
    if (code >= 0 && code <= static_cast<int>(kMaxStatusCode))
      ++tally.by_code[code];
  }
  const auto& injected = faulty.injected();
  tally.injected.stalls += injected.stalls;
  tally.injected.truncations += injected.truncations;
  tally.injected.disconnects += injected.disconnects;
  tally.injected.corruptions += injected.corruptions;
  tally.injected.shorts += injected.shorts;
  return tally.wrong_bytes == 0;
}

/// Overload campaign: `threads` workers, each firing `per_thread`
/// requests at an admission-controlled server (max_inflight 1, tiny
/// queue) so most of the herd must be shed. Every response must decode
/// to ok-with-golden-bytes or a typed transient status.
bool run_overload(const std::vector<Golden>& goldens, OverloadTally& tally) {
  ServerOptions server_options;
  server_options.jobs = 1;
  ScheduleServer server(server_options);
  AdmissionOptions admission_options;
  admission_options.max_inflight = 1;
  admission_options.max_queue = 2;
  admission_options.queue_timeout_ms = 5;
  AdmissionController admission(admission_options);

  const int threads = 8;
  const int per_thread = 25;
  std::vector<std::thread> herd;
  std::mutex mu;
  bool violated = false;
  for (int t = 0; t < threads; ++t) {
    herd.emplace_back([&, t] {
      OverloadTally local;
      for (int i = 0; i < per_thread; ++i) {
        const Golden& golden =
            goldens[static_cast<std::size_t>(t * per_thread + i) %
                    goldens.size()];
        const std::string response = handle_compile_request(
            server, &admission, golden.request);
        Status status;
        std::string payload;
        ++local.requests;
        if (!decode_compile_response(response, &status, &payload).ok()) {
          std::lock_guard<std::mutex> lock(mu);
          violated = true;
          std::fprintf(stderr,
                       "bench_serve: overload response failed to decode\n");
          continue;
        }
        if (status.ok()) {
          if (payload != golden.report) {
            std::lock_guard<std::mutex> lock(mu);
            violated = true;
            std::fprintf(stderr,
                         "bench_serve: overload WRONG BYTES for %s\n",
                         golden.label.c_str());
          }
          ++local.ok;
        } else if (status.code == StatusCode::kOverloaded) {
          ++local.shed;
        } else if (status.code == StatusCode::kTimeout) {
          ++local.timeout;
        } else {
          ++local.other;
          std::lock_guard<std::mutex> lock(mu);
          violated = true;
          std::fprintf(stderr,
                       "bench_serve: overload unexpected status: %s\n",
                       status.to_string().c_str());
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      tally.requests += local.requests;
      tally.ok += local.ok;
      tally.shed += local.shed;
      tally.timeout += local.timeout;
      tally.other += local.other;
    });
  }
  for (auto& worker : herd) worker.join();

  if (tally.ok == 0) {
    std::fprintf(stderr, "bench_serve: overload campaign had zero successes "
                         "— the gate is shedding everything\n");
    violated = true;
  }
  if (tally.shed == 0) {
    std::fprintf(stderr, "bench_serve: overload campaign shed nothing — "
                         "admission control is not engaging\n");
    violated = true;
  }
  if (tally.ok + tally.shed + tally.timeout + tally.other != tally.requests) {
    std::fprintf(stderr, "bench_serve: overload tallies do not add up — a "
                         "request vanished\n");
    violated = true;
  }
  return !violated;
}

std::string to_json(int chaos_trials, std::uint64_t seed,
                    const std::string& fingerprint, const ChaosTally& chaos,
                    const OverloadTally& overload) {
  std::string out;
  appendf(out,
          "{\n"
          "  \"schema\": \"sbmp-bench-serve-v1\",\n"
          "  \"chaos\": {\n"
          "    \"trials\": %d,\n"
          "    \"seed\": %llu,\n"
          "    \"ok_identical\": %lld,\n"
          "    \"typed_errors\": %lld,\n"
          "    \"wrong_bytes\": %lld,\n"
          "    \"hangs\": %lld,\n"
          "    \"errors_by_code\": {\"timeout\": %lld, \"unavailable\": %lld, "
          "\"overloaded\": %lld, \"frame_too_large\": %lld, \"input\": %lld, "
          "\"internal\": %lld},\n"
          "    \"injected\": {\"stalls\": %lld, \"truncations\": %lld, "
          "\"disconnects\": %lld, \"corruptions\": %lld, \"shorts\": %lld}\n"
          "  },\n"
          "  \"overload\": {\"requests\": %lld, \"ok\": %lld, \"shed\": %lld, "
          "\"timeout\": %lld},\n"
          "  \"schedule_fingerprint\": \"%s\"\n"
          "}\n",
          chaos_trials, static_cast<unsigned long long>(seed),
          static_cast<long long>(chaos.ok_identical),
          static_cast<long long>(chaos.typed_errors),
          static_cast<long long>(chaos.wrong_bytes),
          static_cast<long long>(chaos.hangs),
          static_cast<long long>(chaos.by_code[5]),
          static_cast<long long>(chaos.by_code[6]),
          static_cast<long long>(chaos.by_code[7]),
          static_cast<long long>(chaos.by_code[8]),
          static_cast<long long>(chaos.by_code[1]),
          static_cast<long long>(chaos.by_code[4]),
          static_cast<long long>(chaos.injected.stalls),
          static_cast<long long>(chaos.injected.truncations),
          static_cast<long long>(chaos.injected.disconnects),
          static_cast<long long>(chaos.injected.corruptions),
          static_cast<long long>(chaos.injected.shorts),
          static_cast<long long>(overload.requests),
          static_cast<long long>(overload.ok),
          static_cast<long long>(overload.shed),
          static_cast<long long>(overload.timeout), fingerprint.c_str());
  return out;
}

int run(int argc, char** argv) {
  int chaos_trials = 300;
  std::uint64_t seed = 0x5bd1e9955bd1e995ull;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos_trials = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      ++i;  // accepted for harness-runner uniformity; campaigns pick
            // their own concurrency
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--chaos N] [--seed S] [--json FILE]\n");
      return 2;
    }
  }

  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 100;
  const std::string options_payload = encode_pipeline_options(options);

  // Golden artifacts + the corpus fingerprint (same scheme as
  // BENCH_compile.json, so drift shows up in both seeds identically).
  std::vector<Golden> goldens;
  Hasher64 fp;
  for (auto& target : compile_corpus()) {
    const CompileResult result = compile({target.loop, options});
    if (!result.report.dfg.has_value()) continue;
    fp.update(target.label);
    fp.update_i64(
        static_cast<std::int64_t>(result.report.schedule.groups.size()));
    for (const auto& group : result.report.schedule.groups) {
      fp.update_i64(static_cast<std::int64_t>(group.size()));
      for (const int id : group) fp.update_i64(id);
    }
    Golden golden;
    golden.loop = target.loop;
    golden.label = target.label;
    golden.request = encode_compile_request(options_payload,
                                            target.loop.to_string());
    golden.report = encode_loop_report(
        result.report, schedule_fingerprint(target.loop, options));
    goldens.push_back(std::move(golden));
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fp.digest()));
  const std::string fingerprint = hex;
  std::printf("bench_serve: %zu corpus loops, fingerprint %s\n",
              goldens.size(), fingerprint.c_str());

  // One shared server across chaos trials: its caches warm up exactly
  // like a long-lived daemon's, so later trials also exercise the
  // memory-hit serving path under faults.
  ServerOptions server_options;
  server_options.jobs = 1;
  ScheduleServer server(server_options);

  ChaosTally chaos;
  SplitMix64 pick(seed);
  bool passed = true;
  for (int trial = 0; trial < chaos_trials; ++trial) {
    const Golden& golden = goldens[static_cast<std::size_t>(
        pick.range(0, static_cast<std::int64_t>(goldens.size()) - 1))];
    const std::uint64_t trial_seed = pick.next();
    if (!chaos_trial(server, golden, options, trial_seed, chaos))
      passed = false;
  }
  std::printf(
      "bench_serve: chaos: %d trials — %lld ok (byte-identical), %lld typed "
      "errors, %lld wrong-bytes, %lld hangs; injected %lld faults "
      "(%lld stalls, %lld truncations, %lld disconnects, %lld corruptions, "
      "%lld shorts)\n",
      chaos_trials, static_cast<long long>(chaos.ok_identical),
      static_cast<long long>(chaos.typed_errors),
      static_cast<long long>(chaos.wrong_bytes),
      static_cast<long long>(chaos.hangs),
      static_cast<long long>(chaos.injected.total()),
      static_cast<long long>(chaos.injected.stalls),
      static_cast<long long>(chaos.injected.truncations),
      static_cast<long long>(chaos.injected.disconnects),
      static_cast<long long>(chaos.injected.corruptions),
      static_cast<long long>(chaos.injected.shorts));
  if (chaos.ok_identical == 0 && chaos_trials > 0) {
    std::fprintf(stderr, "bench_serve: chaos campaign never succeeded — "
                         "wrong-bytes bugs would have no traffic to hide "
                         "in\n");
    passed = false;
  }

  OverloadTally overload;
  if (!run_overload(goldens, overload)) passed = false;
  std::printf(
      "bench_serve: overload: %lld requests — %lld ok, %lld shed, %lld "
      "timed out\n",
      static_cast<long long>(overload.requests),
      static_cast<long long>(overload.ok),
      static_cast<long long>(overload.shed),
      static_cast<long long>(overload.timeout));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << to_json(chaos_trials, seed, fingerprint, chaos, overload);
    if (!out.good()) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
  }
  std::printf("bench_serve: %s\n", passed ? "PASS" : "FAIL");
  return passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
