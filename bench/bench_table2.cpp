// Reproduces the paper's Table 2: parallel execution times T{a,b}-{2,4}-
// {1,2} of the five Perfect benchmarks under list scheduling (a) and the
// new instruction scheduling (b), for the four machine cases, 100
// iterations per loop. `--jobs N` fans the grid out over N workers
// (0/default = hardware threads, 1 = serial engine, identical output).
#include <cstdio>

#include "bench_common.h"
#include "sbmp/support/table.h"

int main(int argc, char** argv) {
  using namespace sbmp;
  using namespace sbmp::bench;

  const auto results = run_all_cases(parse_jobs(argc, argv));

  TextTable table;
  table.set_header({"Benchmarks", "Ta-2-1", "Tb-2-1", "Ta-2-2", "Tb-2-2",
                    "Ta-4-1", "Tb-4-1", "Ta-4-2", "Tb-4-2"});
  std::array<CasePair, 4> totals{};
  const auto& suite = perfect_suite();
  for (std::size_t b = 0; b < suite.size(); ++b) {
    std::vector<std::string> row{suite[b].name};
    for (std::size_t c = 0; c < kPaperCases.size(); ++c) {
      row.push_back(std::to_string(results[b][c].ta));
      row.push_back(std::to_string(results[b][c].tb));
      totals[c].ta += results[b][c].ta;
      totals[c].tb += results[b][c].tb;
    }
    table.add_row(std::move(row));
  }
  table.add_separator();
  std::vector<std::string> total_row{"Total"};
  for (std::size_t c = 0; c < kPaperCases.size(); ++c) {
    total_row.push_back(std::to_string(totals[c].ta));
    total_row.push_back(std::to_string(totals[c].tb));
  }
  table.add_row(std::move(total_row));

  std::printf(
      "Table 2: Statistic results (parallel execution time, cycles;\n"
      "a = list scheduling, b = new instruction scheduling; x-y-z =\n"
      "scheduler, issue width, FUs per class; 100 iterations per loop)\n\n"
      "%s\n",
      table.render().c_str());
  return 0;
}
