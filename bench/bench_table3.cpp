// Reproduces the paper's Table 3: improvement percentage of the new
// instruction scheduling over list scheduling per benchmark and machine
// case, plus the paper's 2-issue / 4-issue summary percentages
// (paper: ~83.37% and ~85.1%). `--jobs N` fans the grid out over N
// workers (0/default = hardware threads, 1 = serial engine).
#include <cstdio>

#include "bench_common.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/table.h"

int main(int argc, char** argv) {
  using namespace sbmp;
  using namespace sbmp::bench;

  const auto results = run_all_cases(parse_jobs(argc, argv));

  TextTable table;
  table.set_header({"Benchmarks", "2-issue(#FU=1)", "2-issue(#FU=2)",
                    "4-issue(#FU=1)", "4-issue(#FU=2)"});
  const auto& suite = perfect_suite();
  for (std::size_t b = 0; b < suite.size(); ++b) {
    std::vector<std::string> row{suite[b].name};
    for (std::size_t c = 0; c < kPaperCases.size(); ++c)
      row.push_back(format_percent(results[b][c].improvement()));
    table.add_row(std::move(row));
  }

  // Summary: improvement of the summed totals, grouped by issue width.
  std::int64_t ta2 = 0;
  std::int64_t tb2 = 0;
  std::int64_t ta4 = 0;
  std::int64_t tb4 = 0;
  for (std::size_t b = 0; b < suite.size(); ++b) {
    for (std::size_t c = 0; c < kPaperCases.size(); ++c) {
      if (kPaperCases[c].issue_width == 2) {
        ta2 += results[b][c].ta;
        tb2 += results[b][c].tb;
      } else {
        ta4 += results[b][c].ta;
        tb4 += results[b][c].tb;
      }
    }
  }
  const double imp2 = static_cast<double>(ta2 - tb2) / static_cast<double>(ta2);
  const double imp4 = static_cast<double>(ta4 - tb4) / static_cast<double>(ta4);

  std::printf("Table 3: Improved percentage for the statistics\n\n%s\n",
              table.render().c_str());
  std::printf("Overall improvement, 2-issue: %s   (paper: 83.37%%)\n",
              format_percent(imp2).c_str());
  std::printf("Overall improvement, 4-issue: %s   (paper: 85.1%%)\n",
              format_percent(imp4).c_str());
  return 0;
}
