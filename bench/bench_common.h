#pragma once

// Shared helpers for the table-reproduction harnesses, plus the
// compile-throughput perf harness behind BENCH_compile.json (see
// docs/perf.md) and an optional operator-new interposer that makes
// allocation counts visible in bench_micro.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <new>
#include <string>
#include <vector>

#include "sbmp/core/parallel.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/frontend/parser.h"
#include "sbmp/obs/trace.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/support/hash.h"
#include "sbmp/support/status.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/thread_pool.h"

namespace sbmp::bench {

// ---------------------------------------------------------------------
// Allocation counting. A harness that defines SBMP_ALLOC_COUNTER before
// including this header (one translation unit per binary) gets global
// operator new/delete replacements that tick these counters, so a
// "allocs per compile" number can sit next to the nanoseconds and make
// arena/CSR wins (or regressions) visible in review.
struct AllocCounters {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> bytes{0};
};

inline AllocCounters& alloc_counters() {
  static AllocCounters counters;
  return counters;
}

/// True when the interposer is linked into this binary.
#ifdef SBMP_ALLOC_COUNTER
inline constexpr bool kAllocCountingEnabled = true;
#else
inline constexpr bool kAllocCountingEnabled = false;
#endif

}  // namespace sbmp::bench

#ifdef SBMP_ALLOC_COUNTER
// Global replacements (C++ allows exactly one definition per program;
// every bench binary is a single translation unit over this header).
// GCC flags free() inside a replacement operator delete as a mismatched
// pair; the replacement new above uses malloc, so the pairing is exact.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  sbmp::bench::alloc_counters().count.fetch_add(1,
                                                std::memory_order_relaxed);
  sbmp::bench::alloc_counters().bytes.fetch_add(n,
                                                std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  sbmp::bench::alloc_counters().count.fetch_add(1,
                                                std::memory_order_relaxed);
  sbmp::bench::alloc_counters().bytes.fetch_add(n,
                                                std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop
#endif  // SBMP_ALLOC_COUNTER

namespace sbmp::bench {

/// The paper's four machine cases, in Table 2 column order.
struct MachineCase {
  int issue_width;
  int fus;
  const char* label;
};

inline constexpr std::array<MachineCase, 4> kPaperCases{{
    {2, 1, "2-issue(#FU=1)"},
    {2, 2, "2-issue(#FU=2)"},
    {4, 1, "4-issue(#FU=1)"},
    {4, 2, "4-issue(#FU=2)"},
}};

/// T_a (list) and T_b (sync-aware) totals of one benchmark for one
/// machine case: the sum of the parallel execution times of its
/// DOACROSS loops over 100 iterations, the paper's Table 2 metric.
struct CasePair {
  std::int64_t ta = 0;
  std::int64_t tb = 0;

  [[nodiscard]] double improvement() const {
    return ta > 0 ? static_cast<double>(ta - tb) / static_cast<double>(ta)
                  : 0.0;
  }
};

/// Parses `--jobs N` from a harness command line (other arguments are
/// left for the harness itself). 0 = one worker per hardware thread;
/// 1 = the serial engine, bit-identical to the pre-parallel harnesses.
inline int parse_jobs(int argc, char** argv) {
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = std::atoi(argv[i + 1]);
  }
  return jobs;
}

inline PipelineOptions case_options(const MachineCase& machine) {
  PipelineOptions options;
  options.machine = machines::paper(machine.issue_width, machine.fus);
  options.iterations = 100;
  return options;
}

inline CasePair run_case(const PerfectBenchmark& bench,
                         const MachineCase& machine,
                         ResultCache* cache = nullptr) {
  const PipelineOptions options = case_options(machine);
  CasePair totals;
  for (const auto& loop : bench.program().loops) {
    if (analyze_dependences(loop).is_doall()) continue;
    const SchedulerComparison cmp =
        compare_schedulers_cached(loop, options, cache);
    totals.ta += cmp.baseline.parallel_time();
    totals.tb += cmp.improved.parallel_time();
  }
  return totals;
}

/// All benchmarks x all cases; result[b][c]. The grid is embarrassingly
/// parallel — every (benchmark, case, loop) cell is an independent
/// compile-schedule-simulate pipeline — so cells fan out over `jobs`
/// workers and land in a preallocated slot, then reduce in the exact
/// order the serial loop used: totals are bit-identical for any `jobs`.
/// A shared ResultCache deduplicates repeated (loop, options) pipelines
/// across the grid.
inline std::vector<std::array<CasePair, 4>> run_all_cases(int jobs = 1) {
  const auto& suite = perfect_suite();
  std::vector<Program> programs;
  programs.reserve(suite.size());
  for (const auto& bench : suite) programs.push_back(bench.program());

  struct Cell {
    std::size_t b;
    std::size_t c;
    std::size_t l;
  };
  std::vector<Cell> cells;
  for (std::size_t b = 0; b < programs.size(); ++b)
    for (std::size_t c = 0; c < kPaperCases.size(); ++c)
      for (std::size_t l = 0; l < programs[b].loops.size(); ++l)
        cells.push_back({b, c, l});

  ResultCache cache;
  std::vector<CasePair> partial(cells.size());
  // Repeated grid runs (the bench loops, check mode's re-measure) tune
  // this call site's chunk size from measured cell cost.
  static ChunkTuner grid_tuner;
  parallel_for(
      jobs, 0, static_cast<std::int64_t>(cells.size()),
      [&](std::int64_t i) {
        const Cell& cell = cells[static_cast<std::size_t>(i)];
        const Loop& loop = programs[cell.b].loops[cell.l];
        if (analyze_dependences(loop).is_doall()) return;
        const SchedulerComparison cmp = compare_schedulers_cached(
            loop, case_options(kPaperCases[cell.c]), &cache);
        partial[static_cast<std::size_t>(i)] = {cmp.baseline.parallel_time(),
                                                cmp.improved.parallel_time()};
      },
      &grid_tuner);

  std::vector<std::array<CasePair, 4>> out(programs.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[cells[i].b][cells[i].c].ta += partial[i].ta;
    out[cells[i].b][cells[i].c].tb += partial[i].tb;
  }
  return out;
}

// ---------------------------------------------------------------------
// The compile-perf corpus: the paper example, the stencil, and every
// DOACROSS loop of the Perfect suite. Shared by bench_sweep's fault and
// cache modes and by the BENCH_compile.json harness below.

inline constexpr const char* kCorpusStencil = R"(
doacross I = 1, 100
  U[I] = (U[I-1] + V[I]) * w1 + V[I+1] * w2
  R[I] = V[I-2] * w3 + V[I+2]
  Q[I] = R[I] + V[I] / w4
end
)";

inline constexpr const char* kCorpusPaperExample = R"(
doacross I = 1, 100
  B[I] = A[I-2] + E[I+1]
  G[I-3] = A[I-1] * E[I+2]
  A[I] = B[I] + C[I+3]
end
)";

struct CorpusLoop {
  std::string label;
  Loop loop;
};

inline std::vector<CorpusLoop> compile_corpus() {
  std::vector<CorpusLoop> targets;
  targets.push_back(
      {"paper-example", parse_single_loop_or_throw(kCorpusPaperExample)});
  targets.push_back({"stencil", parse_single_loop_or_throw(kCorpusStencil)});
  for (const auto& bench : perfect_suite()) {
    for (const auto& loop : bench.program().loops) {
      if (analyze_dependences(loop).is_doall()) continue;
      targets.push_back({bench.name + "/" + loop.name, loop});
    }
  }
  return targets;
}

/// Compiles every corpus loop under `options`, drops the refused ones
/// (a result without a DFG is the facade's stub for a loop with
/// irregular carried dependences), and returns the 16-hex-char
/// fingerprint of every schedule produced: label, group count, group
/// sizes, instruction ids, in corpus order. This is the drift pin
/// shared by bench_micro, the golden fingerprint test, and
/// bench_archsweep — one definition, so the three can never hash
/// different bytes.
inline std::string fingerprint_corpus(std::vector<CorpusLoop>* corpus,
                                      const PipelineOptions& options,
                                      ResultCache* cache = nullptr) {
  Hasher64 fp;
  std::vector<CorpusLoop> kept;
  kept.reserve(corpus->size());
  for (auto& target : *corpus) {
    const CompileResult result = compile({target.loop, options}, cache);
    if (!result.report.dfg.has_value()) continue;
    fp.update(target.label);
    fp.update_i64(
        static_cast<std::int64_t>(result.report.schedule.groups.size()));
    for (const auto& group : result.report.schedule.groups) {
      fp.update_i64(static_cast<std::int64_t>(group.size()));
      for (const int id : group) fp.update_i64(id);
    }
    kept.push_back(std::move(target));
  }
  *corpus = std::move(kept);
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fp.digest()));
  return hex;
}

// ---------------------------------------------------------------------
// BENCH_compile.json: the measured trajectory of the compile hot path.
// p50/p99 single-thread latency per loop, corpus throughput at jobs 1
// and 8, memoized-cache hit latency, allocations per compile (when the
// interposer is present), and a fingerprint of every schedule produced
// so a perf run doubles as a drift check. See docs/perf.md.

/// p50/p99 of one pipeline phase's span durations, measured in a
/// separate traced pass so the uninstrumented throughput numbers above
/// it in CompilePerf stay untouched.
struct PhasePerf {
  std::string phase;  ///< span name: dep, sync, ..., pipeline
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
};

struct CompilePerf {
  int corpus_loops = 0;  ///< schedulable corpus loops measured
  int reps = 0;          ///< timed compiles per loop
  std::int64_t compile_p50_ns = 0;
  std::int64_t compile_p99_ns = 0;
  double loops_per_sec_jobs1 = 0.0;
  double loops_per_sec_jobs8 = 0.0;
  /// Measured multi-core scaling curve: (jobs, loops/sec) at every
  /// level of the {1, 2, 4, 8, 16} sweep, in sweep order. jobs1/jobs8
  /// above are the same numbers, kept as scalars for the check reader.
  std::vector<std::pair<int, double>> scaling_curve;
  std::int64_t cache_hit_p50_ns = 0;
  std::int64_t cache_hit_p99_ns = 0;
  /// Fraction of corpus compiles whose never-degrade fallback avoided
  /// the simulation — skipped entirely by the schedule-free pre-filter
  /// or sim-skipped by the list schedule's own bound
  /// ((sbmp_compile_fallback_skipped + sbmp_compile_fallback_sim_skipped)
  /// / sbmp_compile_loops over the traced pass).
  double fallback_skip_rate = 0.0;
  /// Fraction of cache hits served by the thread-local L1 front-cache
  /// during the cache-hit pass (single thread → expected ~1.0).
  double l1_hit_rate = 0.0;
  std::uint64_t allocs_per_compile = 0;  ///< 0 when no interposer
  std::string schedule_fingerprint;      ///< 16 hex chars
  std::vector<PhasePerf> phases;         ///< traced pass, pipeline order
};

inline std::int64_t percentile_ns(std::vector<std::int64_t>& samples,
                                  double p) {
  if (samples.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

inline CompilePerf run_compile_perf(int reps = 7) {
  using clock = std::chrono::steady_clock;
  const auto ns_since = [](clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                t0)
        .count();
  };

  PipelineOptions options;
  options.machine = machines::paper(4, 2);
  options.iterations = 100;

  // Schedulable corpus + schedule fingerprint (warms caches, pins
  // drift); fingerprint_corpus drops the loops the facade refuses.
  std::vector<CorpusLoop> corpus = compile_corpus();
  CompilePerf perf;
  perf.schedule_fingerprint = fingerprint_corpus(&corpus, options);
  perf.corpus_loops = static_cast<int>(corpus.size());
  perf.reps = reps;

  // Single-thread per-loop latency distribution. Requests are built
  // outside the timed region: the facade copies the loop into the
  // request, and that setup cost must not pollute the compile numbers.
  std::vector<CompileRequest> timed;
  timed.reserve(corpus.size());
  for (const auto& target : corpus) timed.push_back({target.loop, options});
  std::vector<std::int64_t> samples;
  samples.reserve(timed.size() * static_cast<std::size_t>(reps));
  const std::uint64_t allocs_before =
      alloc_counters().count.load(std::memory_order_relaxed);
  for (int r = 0; r < reps; ++r) {
    for (const auto& request : timed) {
      const auto t0 = clock::now();
      const CompileResult result = compile(request);
      samples.push_back(ns_since(t0));
      // Keep the compiler honest about the report being used.
      if (result.report.schedule.groups.empty() &&
          result.report.tac.size() > 0)
        std::abort();
    }
  }
  const std::uint64_t allocs_after =
      alloc_counters().count.load(std::memory_order_relaxed);
  if (kAllocCountingEnabled && !samples.empty())
    perf.allocs_per_compile = (allocs_after - allocs_before) / samples.size();
  std::vector<std::int64_t> scratch = samples;
  perf.compile_p50_ns = percentile_ns(scratch, 0.50);
  scratch = samples;
  perf.compile_p99_ns = percentile_ns(scratch, 0.99);

  // Corpus throughput through the batch facade across the full
  // {1, 2, 4, 8, 16} jobs sweep, cache off so every loop pays the full
  // compile. The shared pool spawns its workers on the untimed warmup
  // pass, so the timed passes measure steady-state throughput — what a
  // daemon or sweep actually sustains — never thread-spawn latency (the
  // old methodology charged 8 spawns to the jobs8 region and made
  // parallelism look like a loss). Each jobs level takes the best of
  // `reps` passes to shed scheduler noise; the whole curve lands in the
  // JSON so trajectory tooling sees the knee, while the jobs1/jobs8
  // scalars keep feeding the scaling gate unchanged.
  std::vector<CompileRequest> requests;
  requests.reserve(corpus.size());
  for (const auto& target : corpus)
    requests.push_back({target.loop, options});
  for (const int jobs : {1, 2, 4, 8, 16}) {
    CompileBatchOptions batch;
    batch.jobs = jobs;
    batch.use_cache = false;
    (void)compile(requests, batch);  // warmup: pool spawn, caches hot
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = clock::now();
      const ProgramReport report = compile(requests, batch);
      const double secs = static_cast<double>(ns_since(t0)) / 1e9;
      const double rate =
          secs > 0.0 ? static_cast<double>(report.loops.size()) / secs : 0.0;
      best = std::max(best, rate);
    }
    perf.scaling_curve.emplace_back(jobs, best);
    if (jobs == 1) perf.loops_per_sec_jobs1 = best;
    if (jobs == 8) perf.loops_per_sec_jobs8 = best;
  }

  // Memoized-cache hit latency: fill once, then time pure hits.
  ResultCache cache;
  std::vector<std::string> keys;
  for (const auto& target : corpus) {
    (void)compile({target.loop, options}, &cache);
    keys.push_back(ResultCache::key(target.loop, options));
  }
  std::vector<std::int64_t> hit_ns;
  for (int r = 0; r < 50; ++r) {
    for (const auto& key : keys) {
      const auto t0 = clock::now();
      const auto hit = cache.lookup(key);
      hit_ns.push_back(ns_since(t0));
      if (hit == nullptr) std::abort();  // a miss here is harness breakage
    }
  }
  scratch = hit_ns;
  perf.cache_hit_p50_ns = percentile_ns(scratch, 0.50);
  scratch = hit_ns;
  perf.cache_hit_p99_ns = percentile_ns(scratch, 0.99);
  if (cache.hits() > 0)
    perf.l1_hit_rate = static_cast<double>(cache.l1_hits()) /
                       static_cast<double>(cache.hits());

  // Per-phase latency breakdown from a separate *traced* pass, so the
  // uninstrumented numbers above measure exactly what production runs
  // pay. Span durations come straight from the tracer's event log;
  // phases are reported in pipeline order (first-appearance order of
  // their spans). The pass also carries a metrics registry, which yields
  // the pre-filter skip rate for free.
  Tracer tracer;
  MetricsRegistry traced_metrics;
  PipelineOptions traced_options = options;
  traced_options.tracer = &tracer;
  traced_options.metrics = &traced_metrics;
  for (int r = 0; r < reps; ++r)
    for (const auto& target : corpus)
      (void)compile({target.loop, traced_options});
  const std::int64_t traced_loops =
      traced_metrics.counter("sbmp_compile_loops_total")->value();
  if (traced_loops > 0)
    perf.fallback_skip_rate =
        static_cast<double>(
            traced_metrics.counter("sbmp_compile_fallback_skipped_total")
                ->value() +
            traced_metrics.counter("sbmp_compile_fallback_sim_skipped_total")
                ->value()) /
        static_cast<double>(traced_loops);
  std::vector<std::string> phase_order;
  std::vector<std::vector<std::int64_t>> phase_samples;
  for (const Tracer::Event& event : tracer.events()) {
    std::size_t at = 0;
    while (at < phase_order.size() && phase_order[at] != event.name) ++at;
    if (at == phase_order.size()) {
      phase_order.emplace_back(event.name);
      phase_samples.emplace_back();
    }
    phase_samples[at].push_back(event.duration_ns);
  }
  for (std::size_t i = 0; i < phase_order.size(); ++i) {
    PhasePerf phase;
    phase.phase = phase_order[i];
    phase.p50_ns = percentile_ns(phase_samples[i], 0.50);
    phase.p99_ns = percentile_ns(phase_samples[i], 0.99);
    perf.phases.push_back(std::move(phase));
  }
  return perf;
}

/// v2 added "phase_ns" (per-phase p50/p99 from the traced pass); v3
/// added "scaling_curve": measured loops/sec at every jobs level of the
/// {1, 2, 4, 8, 16} sweep; v4 adds "fallback_skip_rate" (fraction of
/// compiles whose never-degrade fallback the analytic pre-filter
/// skipped) and "l1_hit_rate" (cache hits served by the thread-local
/// L1). The check-mode reader scans scalar fields by key, so older
/// files remain checkable against a v4 binary and vice versa.
inline std::string compile_perf_to_json(const CompilePerf& perf) {
  std::string out;
  appendf(out,
          "{\n"
          "  \"schema\": \"sbmp-bench-compile-v4\",\n"
          "  \"corpus_loops\": %d,\n"
          "  \"reps\": %d,\n"
          "  \"compile_ns\": {\"p50\": %lld, \"p99\": %lld},\n"
          "  \"loops_per_sec\": {\"jobs1\": %.1f, \"jobs8\": %.1f},\n"
          "  \"scaling_curve\": {",
          perf.corpus_loops, perf.reps,
          static_cast<long long>(perf.compile_p50_ns),
          static_cast<long long>(perf.compile_p99_ns),
          perf.loops_per_sec_jobs1, perf.loops_per_sec_jobs8);
  for (std::size_t i = 0; i < perf.scaling_curve.size(); ++i) {
    appendf(out, "%s\"jobs%d\": %.1f", i == 0 ? "" : ", ",
            perf.scaling_curve[i].first, perf.scaling_curve[i].second);
  }
  appendf(out,
          "},\n"
          "  \"cache_hit_ns\": {\"p50\": %lld, \"p99\": %lld},\n"
          "  \"fallback_skip_rate\": %.3f,\n"
          "  \"l1_hit_rate\": %.3f,\n"
          "  \"allocs_per_compile\": %llu,\n"
          "  \"schedule_fingerprint\": \"%s\",\n"
          "  \"phase_ns\": {",
          static_cast<long long>(perf.cache_hit_p50_ns),
          static_cast<long long>(perf.cache_hit_p99_ns),
          perf.fallback_skip_rate, perf.l1_hit_rate,
          static_cast<unsigned long long>(perf.allocs_per_compile),
          perf.schedule_fingerprint.c_str());
  for (std::size_t i = 0; i < perf.phases.size(); ++i) {
    appendf(out, "%s\n    \"%s\": {\"p50\": %lld, \"p99\": %lld}",
            i == 0 ? "" : ",", perf.phases[i].phase.c_str(),
            static_cast<long long>(perf.phases[i].p50_ns),
            static_cast<long long>(perf.phases[i].p99_ns));
  }
  appendf(out, "%s}\n}\n", perf.phases.empty() ? "" : "\n  ");
  return out;
}

/// Minimal extraction of one scalar field from the checked-in JSON (the
/// format above is the only producer, so a string scan suffices and
/// keeps the check binary dependency-free).
inline bool json_field(const std::string& json, const std::string& key,
                       std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  std::size_t start = at + needle.size();
  while (start < json.size() &&
         (json[start] == ' ' || json[start] == '"'))
    ++start;
  std::size_t end = start;
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != '"' && json[end] != '\n')
    ++end;
  *out = json.substr(start, end - start);
  return true;
}

/// Extracts `key` from inside the object named `phase` in "phase_ns"
/// (e.g. phase "fallback", key "p50"). json_field only scans flat
/// scalars, and phase objects all share the p50/p99 key names, so this
/// first narrows the scan to the one phase's {...} slice.
inline bool json_phase_field(const std::string& json,
                             const std::string& phase,
                             const std::string& key, std::string* out) {
  const std::string needle = "\"" + phase + "\":";
  std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  at = json.find('{', at + needle.size());
  if (at == std::string::npos) return false;
  const std::size_t close = json.find('}', at);
  if (close == std::string::npos) return false;
  const std::string slice = json.substr(at, close - at + 1);
  return json_field(slice, key, out);
}

/// The jobs8/jobs1 scaling floor `--check` enforces when no
/// `--scaling-floor` override is given, derived from the machine
/// actually running the check. On the 8-core CI runner this is the full
/// 2.5x gate (negative scaling can never land again); narrower machines
/// get a proportionally derated floor, down to a single core, where the
/// only honest assertion is "the parallel path is not a material loss"
/// (the pre-fix state was a 27% loss on one core — pure overhead).
inline double default_scaling_floor() {
  const int cores = ThreadPool::default_thread_count();
  if (cores >= 8) return 2.5;
  if (cores <= 1) return 0.8;
  return 0.45 * cores;
}

/// The fallback-phase latency budget `--check` enforces, in ns of p50
/// span time, anchored to the last *pre-cutoff* measurement (13598ns on
/// the reference machine, BENCH_compile.json as of the chunk-autotuning
/// PR's parent): the cutoff + pre-filter rework promised >= 60% off that
/// phase, so the gate holds the phase at <= 40% of the old cost forever
/// — re-anchoring to the post-rework file would self-ratchet and demand
/// another 60% every regeneration. Scaled by the machine's measured
/// pipeline-p50 ratio against the stored file (never below 1.0, so a
/// fast machine cannot weaken the gate).
inline constexpr std::int64_t kPrePrFallbackP50Ns = 13598;
inline constexpr double kFallbackBudgetFraction = 0.40;

/// Check mode for CI: no schedule drift against the checked-in
/// BENCH_compile.json, jobs=1 throughput above a generous floor
/// (1/20 of the recorded rate, never below 25 loops/s) so a pathological
/// slowdown fails loudly without flaking on machine variance, the
/// re-measured jobs8/jobs1 ratio at or above `scaling_floor` (< 0 picks
/// default_scaling_floor() for this machine) so parallel scaling
/// regressions fail the PR that introduces them, and the fallback
/// phase's p50 within its machine-scaled budget (see
/// kPrePrFallbackP50Ns; `fallback_budget_ns` >= 0 overrides the budget
/// outright, and the gate is skipped when either side lacks phase data).
inline int check_compile_perf(const CompilePerf& now,
                              const std::string& json_path,
                              double scaling_floor = -1.0,
                              std::int64_t fallback_budget_ns = -1) {
  std::ifstream in(json_path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read %s\n", json_path.c_str());
    return 2;
  }
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string stored_fp, stored_rate;
  if (!json_field(json, "schedule_fingerprint", &stored_fp) ||
      !json_field(json, "jobs1", &stored_rate)) {
    std::fprintf(stderr, "%s is not a BENCH_compile.json\n",
                 json_path.c_str());
    return 2;
  }
  bool failed = false;
  if (stored_fp != now.schedule_fingerprint) {
    std::fprintf(stderr,
                 "SCHEDULE DRIFT: fingerprint %s (recorded) vs %s "
                 "(this build) — the optimizations changed a scheduling "
                 "decision\n",
                 stored_fp.c_str(), now.schedule_fingerprint.c_str());
    failed = true;
  }
  const double floor =
      std::max(25.0, std::atof(stored_rate.c_str()) / 20.0);
  if (now.loops_per_sec_jobs1 < floor) {
    std::fprintf(stderr,
                 "PERF REGRESSION: %.1f loops/s at jobs=1, floor %.1f "
                 "(recorded %.1f)\n",
                 now.loops_per_sec_jobs1, floor,
                 std::atof(stored_rate.c_str()));
    failed = true;
  }
  if (scaling_floor < 0.0) scaling_floor = default_scaling_floor();
  const double scaling =
      now.loops_per_sec_jobs1 > 0.0
          ? now.loops_per_sec_jobs8 / now.loops_per_sec_jobs1
          : 0.0;
  if (scaling < scaling_floor) {
    std::fprintf(stderr,
                 "PARALLEL SCALING REGRESSION: jobs8/jobs1 = %.2fx "
                 "(%.1f / %.1f loops/s), floor %.2fx on %d cores — the "
                 "parallel compile path lost its speedup\n",
                 scaling, now.loops_per_sec_jobs8, now.loops_per_sec_jobs1,
                 scaling_floor, ThreadPool::default_thread_count());
    failed = true;
  }
  // Fallback-phase budget. Machine speed is normalized out through the
  // pipeline-p50 ratio: on a machine 2x slower than the one that wrote
  // the stored file, the budget doubles; on a faster one it stays at
  // the reference value (ratio clamped to >= 1.0).
  std::int64_t now_fallback_p50 = -1;
  for (const PhasePerf& phase : now.phases)
    if (phase.phase == "fallback") now_fallback_p50 = phase.p50_ns;
  std::string stored_pipeline_p50;
  if (now_fallback_p50 >= 0 &&
      json_phase_field(json, "pipeline", "p50", &stored_pipeline_p50)) {
    std::int64_t now_pipeline_p50 = -1;
    for (const PhasePerf& phase : now.phases)
      if (phase.phase == "pipeline") now_pipeline_p50 = phase.p50_ns;
    const double stored = std::atof(stored_pipeline_p50.c_str());
    const double scale =
        (stored > 0.0 && now_pipeline_p50 > 0)
            ? std::max(1.0, static_cast<double>(now_pipeline_p50) / stored)
            : 1.0;
    const std::int64_t budget =
        fallback_budget_ns >= 0
            ? fallback_budget_ns
            : static_cast<std::int64_t>(
                  kFallbackBudgetFraction *
                  static_cast<double>(kPrePrFallbackP50Ns) * scale);
    if (now_fallback_p50 > budget) {
      std::fprintf(stderr,
                   "FALLBACK BUDGET EXCEEDED: fallback phase p50 %lld ns "
                   "> budget %lld ns (%.0f%% of the pre-cutoff %lld ns, "
                   "machine scale %.2f) — the never-degrade pass lost its "
                   "cutoff/pre-filter savings\n",
                   static_cast<long long>(now_fallback_p50),
                   static_cast<long long>(budget),
                   kFallbackBudgetFraction * 100.0,
                   static_cast<long long>(kPrePrFallbackP50Ns), scale);
      failed = true;
    }
  }
  std::printf("perf check: %d loops, %.1f loops/s (floor %.1f), "
              "jobs8/jobs1 %.2fx (floor %.2fx), fallback p50 %lld ns, "
              "fingerprint %s — %s\n",
              now.corpus_loops, now.loops_per_sec_jobs1, floor, scaling,
              scaling_floor, static_cast<long long>(now_fallback_p50),
              now.schedule_fingerprint.c_str(), failed ? "FAIL" : "PASS");
  return failed ? 1 : 0;
}

}  // namespace sbmp::bench
