#pragma once

// Shared helpers for the table-reproduction harnesses.

#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sbmp/core/parallel.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/support/thread_pool.h"

namespace sbmp::bench {

/// The paper's four machine cases, in Table 2 column order.
struct MachineCase {
  int issue_width;
  int fus;
  const char* label;
};

inline constexpr std::array<MachineCase, 4> kPaperCases{{
    {2, 1, "2-issue(#FU=1)"},
    {2, 2, "2-issue(#FU=2)"},
    {4, 1, "4-issue(#FU=1)"},
    {4, 2, "4-issue(#FU=2)"},
}};

/// T_a (list) and T_b (sync-aware) totals of one benchmark for one
/// machine case: the sum of the parallel execution times of its
/// DOACROSS loops over 100 iterations, the paper's Table 2 metric.
struct CasePair {
  std::int64_t ta = 0;
  std::int64_t tb = 0;

  [[nodiscard]] double improvement() const {
    return ta > 0 ? static_cast<double>(ta - tb) / static_cast<double>(ta)
                  : 0.0;
  }
};

/// Parses `--jobs N` from a harness command line (other arguments are
/// left for the harness itself). 0 = one worker per hardware thread;
/// 1 = the serial engine, bit-identical to the pre-parallel harnesses.
inline int parse_jobs(int argc, char** argv) {
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = std::atoi(argv[i + 1]);
  }
  return jobs;
}

inline PipelineOptions case_options(const MachineCase& machine) {
  PipelineOptions options;
  options.machine = MachineConfig::paper(machine.issue_width, machine.fus);
  options.iterations = 100;
  return options;
}

inline CasePair run_case(const PerfectBenchmark& bench,
                         const MachineCase& machine,
                         ResultCache* cache = nullptr) {
  const PipelineOptions options = case_options(machine);
  CasePair totals;
  for (const auto& loop : bench.program().loops) {
    if (analyze_dependences(loop).is_doall()) continue;
    const SchedulerComparison cmp =
        compare_schedulers_cached(loop, options, cache);
    totals.ta += cmp.baseline.parallel_time();
    totals.tb += cmp.improved.parallel_time();
  }
  return totals;
}

/// All benchmarks x all cases; result[b][c]. The grid is embarrassingly
/// parallel — every (benchmark, case, loop) cell is an independent
/// compile-schedule-simulate pipeline — so cells fan out over `jobs`
/// workers and land in a preallocated slot, then reduce in the exact
/// order the serial loop used: totals are bit-identical for any `jobs`.
/// A shared ResultCache deduplicates repeated (loop, options) pipelines
/// across the grid.
inline std::vector<std::array<CasePair, 4>> run_all_cases(int jobs = 1) {
  const auto& suite = perfect_suite();
  std::vector<Program> programs;
  programs.reserve(suite.size());
  for (const auto& bench : suite) programs.push_back(bench.program());

  struct Cell {
    std::size_t b;
    std::size_t c;
    std::size_t l;
  };
  std::vector<Cell> cells;
  for (std::size_t b = 0; b < programs.size(); ++b)
    for (std::size_t c = 0; c < kPaperCases.size(); ++c)
      for (std::size_t l = 0; l < programs[b].loops.size(); ++l)
        cells.push_back({b, c, l});

  ResultCache cache;
  std::vector<CasePair> partial(cells.size());
  parallel_for(jobs, 0, static_cast<std::int64_t>(cells.size()),
               [&](std::int64_t i) {
                 const Cell& cell = cells[static_cast<std::size_t>(i)];
                 const Loop& loop = programs[cell.b].loops[cell.l];
                 if (analyze_dependences(loop).is_doall()) return;
                 const SchedulerComparison cmp = compare_schedulers_cached(
                     loop, case_options(kPaperCases[cell.c]), &cache);
                 partial[static_cast<std::size_t>(i)] = {
                     cmp.baseline.parallel_time(),
                     cmp.improved.parallel_time()};
               });

  std::vector<std::array<CasePair, 4>> out(programs.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[cells[i].b][cells[i].c].ta += partial[i].ta;
    out[cells[i].b][cells[i].c].tb += partial[i].tb;
  }
  return out;
}

}  // namespace sbmp::bench
