#pragma once

// Shared helpers for the table-reproduction harnesses.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sbmp/core/pipeline.h"
#include "sbmp/perfect/suite.h"

namespace sbmp::bench {

/// The paper's four machine cases, in Table 2 column order.
struct MachineCase {
  int issue_width;
  int fus;
  const char* label;
};

inline constexpr std::array<MachineCase, 4> kPaperCases{{
    {2, 1, "2-issue(#FU=1)"},
    {2, 2, "2-issue(#FU=2)"},
    {4, 1, "4-issue(#FU=1)"},
    {4, 2, "4-issue(#FU=2)"},
}};

/// T_a (list) and T_b (sync-aware) totals of one benchmark for one
/// machine case: the sum of the parallel execution times of its
/// DOACROSS loops over 100 iterations, the paper's Table 2 metric.
struct CasePair {
  std::int64_t ta = 0;
  std::int64_t tb = 0;

  [[nodiscard]] double improvement() const {
    return ta > 0 ? static_cast<double>(ta - tb) / static_cast<double>(ta)
                  : 0.0;
  }
};

inline CasePair run_case(const PerfectBenchmark& bench,
                         const MachineCase& machine) {
  PipelineOptions options;
  options.machine = MachineConfig::paper(machine.issue_width, machine.fus);
  options.iterations = 100;
  CasePair totals;
  for (const auto& loop : bench.program().loops) {
    if (analyze_dependences(loop).is_doall()) continue;
    const SchedulerComparison cmp = compare_schedulers(loop, options);
    totals.ta += cmp.baseline.parallel_time();
    totals.tb += cmp.improved.parallel_time();
  }
  return totals;
}

/// All benchmarks x all cases; result[b][c].
inline std::vector<std::array<CasePair, 4>> run_all_cases() {
  std::vector<std::array<CasePair, 4>> out;
  for (const auto& bench : perfect_suite()) {
    std::array<CasePair, 4> row{};
    for (std::size_t c = 0; c < kPaperCases.size(); ++c)
      row[c] = run_case(bench, kPaperCases[c]);
    out.push_back(row);
  }
  return out;
}

}  // namespace sbmp::bench
