#!/usr/bin/env bash
# Full robustness gate: plain build + tests, fault campaign, fuzz sweep,
# and (optionally) sanitized rebuilds. Run from anywhere; builds live
# next to the source tree's ./build* directories.
#
#   tools/check.sh                # build, ctest, 500-trial fault campaign
#   SBMP_SANITIZE=1 tools/check.sh   # + ASan/UBSan suite + TSan parallel
#   SBMP_FUZZ_SEEDS=200 tools/check.sh  # deepen the fuzz sweep
#
# Exits non-zero on the first failing stage.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== build (default toolchain) =="
cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs"

echo "== tier-1 tests =="
ctest --test-dir "$root/build" --output-on-failure -j "$jobs"

echo "== fault campaign (>=500 adversarial trials + mutation detection) =="
"$root/build/bench/bench_sweep" --faults 500

echo "== fuzz sweep (SBMP_FUZZ_SEEDS=${SBMP_FUZZ_SEEDS:-25}) =="
ctest --test-dir "$root/build" -L fuzz --output-on-failure -j "$jobs"

echo "== real-execution smoke (threads vs serial reference) =="
"$root/build/bench/bench_exec" --check

echo "== never-degrade prefilter differential (fast path vs forced full path) =="
# The guard's cost shortcuts are exact by construction: forcing the old
# full-schedule + full-simulate path must reproduce the corpus output
# byte for byte, with and without redundant-wait elimination.
for extra in "" "--eliminate"; do
  if ! diff <("$root/build/tools/sbmpc" $extra --list-benchmarks) \
            <("$root/build/tools/sbmpc" $extra --no-never-degrade-prefilter --list-benchmarks); then
    echo "prefilter differential FAILED (extra flags: '$extra')" >&2
    exit 1
  fi
done

echo "== non-default machine end-to-end (compile + execute + daemon) =="
# One machine the legacy --width/--fus flags cannot express (bounded
# signal buffer, asymmetric FU mix, a 2-cycle load) must travel the
# whole stack: local compile, real-thread execution, and the canonical
# desc over the daemon wire with byte-identical output.
mdesc='issue=8 fu=ls:2,mul:2 lat=load:2,muli:3,mul:3,div:6,*:1 buf=3'
"$root/build/tools/sbmpc" --machine "$mdesc" --execute "$root/samples/fig1.loop"
sock="$(mktemp -u "${TMPDIR:-/tmp}/sbmpd-check-XXXXXX.sock")"
"$root/build/tools/sbmpd" --socket "$sock" &
sbmpd_pid=$!
trap 'kill "$sbmpd_pid" 2>/dev/null || true' EXIT
for _ in $(seq 100); do [[ -S "$sock" ]] && break; sleep 0.1; done
if ! diff <("$root/build/tools/sbmpc" --machine "$mdesc" "$root/samples/fig1.loop") \
          <("$root/build/tools/sbmpc" --machine "$mdesc" --remote "$sock" "$root/samples/fig1.loop"); then
  echo "daemon round-trip diverged from local compile (machine: $mdesc)" >&2
  exit 1
fi
kill "$sbmpd_pid" 2>/dev/null || true
wait "$sbmpd_pid" 2>/dev/null || true
trap - EXIT

echo "== architecture sweep smoke (paper 4-point grid, fingerprint gate) =="
"$root/build/bench/bench_archsweep" --check "$root/BENCH_compile.json"

if [[ -n "${SBMP_SANITIZE:-}" ]]; then
  echo "== ASan+UBSan suite =="
  cmake -B "$root/build-asan" -S "$root" -DSBMP_SANITIZE=address >/dev/null
  cmake --build "$root/build-asan" -j "$jobs"
  ctest --test-dir "$root/build-asan" --output-on-failure -j "$jobs"

  echo "== TSan parallel-engine + serve + executor tests =="
  cmake -B "$root/build-tsan" -S "$root" -DSBMP_SANITIZE=thread >/dev/null
  cmake --build "$root/build-tsan" -j "$jobs"
  ctest --test-dir "$root/build-tsan" -L "parallel|serve|exec" --output-on-failure -j "$jobs"
fi

echo "== all checks passed =="
