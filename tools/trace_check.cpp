// trace_check — validates a Chrome trace-event JSON document.
//
//   trace_check FILE...
//
// For each file: parses the bytes with the same structural validator the
// unit tests use (validate_chrome_trace), requiring a well-formed JSON
// object with a "traceEvents" array whose events carry name/ph/ts (and
// dur for complete events). Prints one line per file; exits 0 when every
// file validates, 1 otherwise. CI runs this over the traces sbmpc
// emits so a malformed trace fails the build, not the viewer.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sbmp/obs/trace.h"
#include "sbmp/support/status.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_check FILE...\n");
    return sbmp::exit_code(sbmp::StatusCode::kUsage);
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "trace_check: cannot open %s\n", argv[i]);
      ok = false;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    if (const sbmp::Status s = sbmp::validate_chrome_trace(json); !s.ok()) {
      std::fprintf(stderr, "trace_check: %s: %s\n", argv[i],
                   s.to_string().c_str());
      ok = false;
      continue;
    }
    std::printf("trace_check: %s: ok (%zu bytes)\n", argv[i], json.size());
  }
  return sbmp::exit_code(ok ? sbmp::StatusCode::kOk
                            : sbmp::StatusCode::kInput);
}
