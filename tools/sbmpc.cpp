// sbmpc — command-line driver for the sync-aware scheduling pipeline.
//
// Reads LoopLang files (pre-restructuring form allowed), restructures,
// analyzes, schedules and simulates every loop, and prints whatever
// stage artifacts are requested.
//
//   sbmpc [options] file.loop...
//   sbmpc --list-benchmarks            # run the built-in Perfect suite
//
// Options:
//   --width N          issue width (default 4)
//   --fus N            function units per class (default 1)
//   --scheduler S      inorder | list | sync-marker | sync-aware
//                      (default sync-aware)
//   --iterations N     simulated iterations (default 100; 0 = trip count)
//   --processors P     processors (default 0 = one per iteration)
//   --compare          report list vs sync-aware side by side
//   --check            run the cross-iteration staleness check
//   --eliminate        access-level redundant-wait elimination
//   --dump WHAT        sync | tac | dfg | dot | schedule | stats |
//                      trace | all
//                      (repeatable; dot prints a Graphviz digraph)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sbmp/core/pipeline.h"
#include "sbmp/dfg/export.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/restructure/classify.h"
#include "sbmp/sched/stats.h"
#include "sbmp/sim/trace.h"

namespace {

using namespace sbmp;

struct CliOptions {
  PipelineOptions pipeline;
  bool compare = false;
  std::set<std::string> dumps;
  std::vector<std::string> files;
  bool run_suite = false;

  [[nodiscard]] bool dump(const char* what) const {
    return dumps.count(what) != 0 || dumps.count("all") != 0;
  }
};

[[noreturn]] void usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "sbmpc: %s\n", message);
  std::fprintf(stderr,
               "usage: sbmpc [--width N] [--fus N] [--scheduler S]\n"
               "             [--iterations N] [--processors P] [--compare]\n"
               "             [--check] [--eliminate] [--dump WHAT]\n"
               "             file.loop... | --list-benchmarks\n");
  std::exit(2);
}

const char* next_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage("missing option value");
  return argv[++i];
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  int width = 4;
  int fus = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--width") == 0) {
      width = std::atoi(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--fus") == 0) {
      fus = std::atoi(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--scheduler") == 0) {
      const std::string s = next_arg(argc, argv, i);
      if (s == "inorder") {
        cli.pipeline.scheduler = SchedulerKind::kInOrder;
      } else if (s == "list") {
        cli.pipeline.scheduler = SchedulerKind::kList;
      } else if (s == "sync-marker") {
        cli.pipeline.scheduler = SchedulerKind::kSyncBarrier;
      } else if (s == "sync-aware") {
        cli.pipeline.scheduler = SchedulerKind::kSyncAware;
      } else {
        usage("unknown scheduler");
      }
    } else if (std::strcmp(arg, "--iterations") == 0) {
      cli.pipeline.iterations = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--processors") == 0) {
      cli.pipeline.processors = std::atoi(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--compare") == 0) {
      cli.compare = true;
    } else if (std::strcmp(arg, "--check") == 0) {
      cli.pipeline.check_ordering = true;
    } else if (std::strcmp(arg, "--eliminate") == 0) {
      cli.pipeline.eliminate_redundant_waits = true;
    } else if (std::strcmp(arg, "--dump") == 0) {
      cli.dumps.insert(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--list-benchmarks") == 0) {
      cli.run_suite = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(nullptr);
    } else if (arg[0] == '-') {
      usage((std::string("unknown option ") + arg).c_str());
    } else {
      cli.files.emplace_back(arg);
    }
  }
  if (width < 1 || fus < 1) usage("width and fus must be positive");
  cli.pipeline.machine = MachineConfig::paper(width, fus);
  if (cli.files.empty() && !cli.run_suite) usage("no input files");
  return cli;
}

void report_loop(const PreLoop& pre, const CliOptions& cli) {
  const RestructureResult restructured = restructure_or_throw(pre);
  const Loop& loop = restructured.loop;
  const DepAnalysis deps = analyze_dependences(loop);

  std::printf("loop %s: %s",
              loop.name.empty() ? "<unnamed>" : loop.name.c_str(),
              doacross_types_to_string(classify_doacross(restructured, deps))
                  .c_str());
  for (const auto& note : restructured.notes)
    std::printf("\n  %s", note.to_string().c_str());
  std::printf("\n");

  if (deps.is_doall()) {
    std::printf("  Doall: no synchronization needed\n\n");
    return;
  }
  if (!deps.is_synchronizable()) {
    std::printf("  irregular carried dependences: loop must serialize\n\n");
    return;
  }

  const LoopReport report = run_pipeline(loop, cli.pipeline);
  if (cli.dump("sync"))
    std::printf("%s", report.synced.to_string().c_str());
  if (cli.dump("tac"))
    std::printf("%s", report.tac.to_string().c_str());
  if (cli.dump("dfg")) {
    for (int c = 0; c < report.dfg->num_components(); ++c) {
      std::printf("  component %d (%s):", c,
                  component_kind_name(report.dfg->component_kind(c)));
      for (const int id : report.dfg->component_members(c))
        std::printf(" %d", id);
      std::printf("\n");
    }
  }
  if (cli.dump("dot"))
    std::printf("%s", dfg_to_dot(report.tac, *report.dfg).c_str());
  if (cli.dump("schedule"))
    std::printf("%s", report.schedule
                          .to_string(report.tac,
                                     cli.pipeline.machine.issue_width)
                          .c_str());
  if (cli.dump("trace")) {
    SimOptions sim_options;
    sim_options.iterations = cli.pipeline.iterations > 0
                                 ? cli.pipeline.iterations
                                 : loop.trip_count();
    sim_options.processors = cli.pipeline.processors;
    std::printf("%s", trace_to_string(report.tac, *report.dfg,
                                      report.schedule, cli.pipeline.machine,
                                      sim_options)
                          .c_str());
  }
  if (cli.dump("stats")) {
    std::printf("  %s\n",
                compute_schedule_stats(report.tac, *report.dfg,
                                       report.schedule, cli.pipeline.machine)
                    .to_string()
                    .c_str());
  }

  if (cli.compare) {
    const SchedulerComparison cmp = compare_schedulers(loop, cli.pipeline);
    std::printf("  list %lld cycles, sync-aware %lld cycles (%.2f%%)\n",
                static_cast<long long>(cmp.baseline.parallel_time()),
                static_cast<long long>(cmp.improved.parallel_time()),
                cmp.improvement() * 100.0);
  } else {
    std::printf("  %s, %s: %lld cycles (%d groups, %lld stall cycles)\n",
                scheduler_name(cli.pipeline.scheduler),
                cli.pipeline.machine.label().c_str(),
                static_cast<long long>(report.parallel_time()),
                report.schedule.length(),
                static_cast<long long>(report.sim.stall_cycles));
  }
  if (report.waits_eliminated > 0)
    std::printf("  redundant waits eliminated: %d\n",
                report.waits_eliminated);
  if (!report.valid()) {
    std::printf("  INVALID:\n");
    for (const auto& v : report.schedule_violations)
      std::printf("    schedule: %s\n", v.c_str());
    for (const auto& v : report.ordering_violations)
      std::printf("    ordering: %s\n", v.c_str());
  }
  std::printf("\n");
}

int run(const CliOptions& cli) {
  int failures = 0;
  const auto run_source = [&](const std::string& label,
                              const std::string& source) {
    DiagEngine diags;
    const PreProgram program = parse_pre_program(source, diags);
    if (!diags.ok()) {
      std::fprintf(stderr, "%s:\n%s", label.c_str(),
                   diags.render().c_str());
      ++failures;
      return;
    }
    for (const auto& pre : program.loops) report_loop(pre, cli);
  };

  for (const auto& file : cli.files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "sbmpc: cannot open %s\n", file.c_str());
      ++failures;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    run_source(file, buffer.str());
  }
  if (cli.run_suite) {
    for (const auto& bench : perfect_suite()) {
      std::printf("==== %s (%s) ====\n", bench.name.c_str(),
                  bench.description.c_str());
      run_source(bench.name, bench.source);
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_cli(argc, argv));
  } catch (const SbmpError& e) {
    std::fprintf(stderr, "sbmpc: %s\n", e.what());
    return 1;
  }
}
