// sbmpc — command-line driver for the sync-aware scheduling pipeline.
//
// Reads LoopLang files (pre-restructuring form allowed), restructures,
// analyzes, schedules and simulates every loop, and prints whatever
// stage artifacts are requested.
//
//   sbmpc [options] file.loop...
//   sbmpc --list-benchmarks            # run the built-in Perfect suite
//
// Options:
//   --width N          issue width (default 4)
//   --fus N            function units per class (default 1)
//   --scheduler S      inorder | list | sync-marker | sync-aware
//                      (default sync-aware)
//   --iterations N     simulated iterations (default 100; 0 = trip count)
//   --processors P     processors (default 0 = one per iteration)
//   --compare          report list vs sync-aware side by side
//   --check            run the cross-iteration staleness check
//   --eliminate        access-level redundant-wait elimination
//   --validate         run the cross-layer schedule validator (default)
//   --no-validate      skip the validator
//   --no-never-degrade-prefilter
//                      force the full never-degrade fallback path (build
//                      the list schedule and simulate it to completion,
//                      no analytic skip and no simulation cutoff); an
//                      A/B switch for the fallback fast path — output
//                      bytes are identical either way
//   --tolerance N      cycle slack for the validator's analytic checks
//   --mutate M         deliberately break the schedule's synchronization
//                      (hoist-send | sink-wait | drop-arc) and report
//                      whether the validator and fault campaign detect
//                      it; detection exits with code 3
//   --jobs N           process loops on N workers (0 = hardware
//                      threads, 1 = serial; output order is identical)
//   --dump WHAT        sync | tac | dfg | dot | schedule | stats |
//                      trace | all
//                      (repeatable; dot prints a Graphviz digraph)
//   --cache-dir DIR    persistent schedule cache (content-addressed;
//                      warm runs are byte-identical to cold runs, see
//                      docs/serving.md)
//   --cache-bytes N    size cap of the persistent cache (default 256 MiB;
//                      oldest entries are evicted first)
//   --remote SOCK      compile through a running sbmpd daemon at the
//                      given Unix socket instead of in-process; output
//                      is byte-identical to a local run
//   --io-timeout-ms N  (with --remote) budget for moving one frame
//                      (default 10000; 0 disables)
//   --deadline-ms N    (with --remote) end-to-end budget per compile
//                      request, covering every retry and backoff; the
//                      remaining budget travels in the request so the
//                      daemon sheds work nobody is waiting for
//                      (default 0 = none)
//   --retries N        (with --remote) total attempts per request
//                      (default 3); only transient failures — connect,
//                      timeout, truncated frame, daemon shed — are
//                      retried, with jittered exponential backoff
//   --retry-backoff-ms N  (with --remote) initial backoff ceiling
//                      (default 10, doubling per retry up to 250)
//   --fallback-local   (with --remote) graceful degradation: when the
//                      daemon stays unreachable after the retry budget,
//                      compile locally instead of failing the run;
//                      degradations are reported on stderr and the
//                      output bytes stay identical either way
//   --trace-out FILE   write a Chrome trace-event JSON timeline of the
//                      run (frontend, restructure, and every pipeline
//                      phase per loop) to FILE; view in chrome://tracing
//                      or Perfetto. Tracing observes the compile and
//                      never changes its output bytes.
//   --execute          actually run each compiled DOACROSS schedule on
//                      live threads (see docs/execution.md) and check
//                      the final memory is byte-identical to a serial
//                      interpretation; divergence exits with code 9
//   --execute-threads N  (implies --execute) worker thread count
//                      (default 1; above the per-run ceiling exits 10)
//   --execute-corrupt  (implies --execute) flip one result bit after
//                      the run — proves the divergence detector is
//                      live, the executor's analogue of --mutate
//
// Exit codes (the StatusCode contract, see docs/robustness.md and
// docs/serving.md):
//   0  success
//   1  input diagnostics (parse/open/restructure failures)
//   2  usage error
//   3  validation failure (a schedule failed the validator or the
//      fault-injection oracle; includes every --mutate detection)
//   4  internal error
//   5  deadline exceeded (--remote: a request ran out of --deadline-ms)
//   6  unavailable (--remote: no daemon / connection failed after
//      retries; --fallback-local converts this to a local compile)
//   7  overloaded (--remote: the daemon shed the request after retries)
//   8  frame too large (--remote: a peer violated the frame size cap)
//   9  execution divergence (--execute: a threaded run produced memory
//      that differs from the serial reference interpretation)
//  10  resource unavailable (--execute: worker threads could not start,
//      the thread count exceeds the per-run ceiling, or the loop's
//      planned memory footprint exceeds the executor's cap)
// All diagnostics are rendered before exit: one bad loop or file never
// suppresses the reports of the others.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sbmp/core/parallel.h"
#include "sbmp/core/pipeline.h"
#include "sbmp/dfg/export.h"
#include "sbmp/exec/executor.h"
#include "sbmp/obs/trace.h"
#include "sbmp/serve/client.h"
#include "sbmp/serve/server.h"
#include "sbmp/perfect/suite.h"
#include "sbmp/restructure/classify.h"
#include "sbmp/sched/stats.h"
#include "sbmp/sim/fault.h"
#include "sbmp/sim/trace.h"
#include "sbmp/support/status.h"
#include "sbmp/support/strings.h"
#include "sbmp/support/thread_pool.h"

namespace {

using namespace sbmp;

struct CliOptions {
  PipelineOptions pipeline;
  bool compare = false;
  std::set<std::string> dumps;
  std::vector<std::string> files;
  bool run_suite = false;
  int jobs = 0;  ///< 0 = hardware threads, 1 = serial
  std::optional<ScheduleMutation> mutate;
  std::string remote_socket;  ///< non-empty = compile through sbmpd
  std::int64_t io_timeout_ms = 10000;  ///< --remote per-frame budget
  std::int64_t deadline_ms = 0;        ///< --remote per-request budget
  int retries = 3;                     ///< --remote attempts per request
  std::int64_t retry_backoff_ms = 10;  ///< --remote initial backoff
  bool fallback_local = false;         ///< --remote degradation switch
  std::string trace_out;      ///< non-empty = write Chrome trace JSON
  bool execute = false;       ///< run schedules on live threads
  int execute_threads = 1;    ///< --execute worker count
  bool execute_corrupt = false;  ///< divergence-detector probe

  [[nodiscard]] bool dump(const char* what) const {
    return dumps.count(what) != 0 || dumps.count("all") != 0;
  }
};

[[noreturn]] void usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "sbmpc: %s\n", message);
  std::fprintf(stderr,
               "usage: sbmpc [--width N] [--fus N] [--machine DESC|@file]\n"
               "             [--scheduler S]\n"
               "             [--iterations N] [--processors P] [--compare]\n"
               "             [--check] [--eliminate] [--validate]\n"
               "             [--no-validate] [--no-never-degrade-prefilter]\n"
               "             [--tolerance N] [--mutate M]\n"
               "             [--dump WHAT] [--jobs N] [--cache-dir DIR]\n"
               "             [--cache-bytes N] [--remote SOCK]\n"
               "             [--io-timeout-ms N] [--deadline-ms N]\n"
               "             [--retries N] [--retry-backoff-ms N]\n"
               "             [--fallback-local] [--trace-out FILE]\n"
               "             [--execute] [--execute-threads N]\n"
               "             [--execute-corrupt]\n"
               "             file.loop... | --list-benchmarks\n");
  std::exit(exit_code(StatusCode::kUsage));
}

const char* next_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage("missing option value");
  return argv[++i];
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  int width = 4;
  int fus = 1;
  bool width_or_fus_given = false;
  std::string machine_text;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--width") == 0) {
      width = std::atoi(next_arg(argc, argv, i));
      width_or_fus_given = true;
    } else if (std::strcmp(arg, "--fus") == 0) {
      fus = std::atoi(next_arg(argc, argv, i));
      width_or_fus_given = true;
    } else if (std::strcmp(arg, "--machine") == 0) {
      machine_text = next_arg(argc, argv, i);
      if (machine_text.empty()) usage("--machine wants a desc or @file");
    } else if (std::strcmp(arg, "--scheduler") == 0) {
      const std::string s = next_arg(argc, argv, i);
      if (s == "inorder") {
        cli.pipeline.scheduler = SchedulerKind::kInOrder;
      } else if (s == "list") {
        cli.pipeline.scheduler = SchedulerKind::kList;
      } else if (s == "sync-marker") {
        cli.pipeline.scheduler = SchedulerKind::kSyncBarrier;
      } else if (s == "sync-aware") {
        cli.pipeline.scheduler = SchedulerKind::kSyncAware;
      } else {
        usage("unknown scheduler");
      }
    } else if (std::strcmp(arg, "--iterations") == 0) {
      cli.pipeline.iterations = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--processors") == 0) {
      cli.pipeline.processors = std::atoi(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--compare") == 0) {
      cli.compare = true;
    } else if (std::strcmp(arg, "--check") == 0) {
      cli.pipeline.check_ordering = true;
    } else if (std::strcmp(arg, "--eliminate") == 0) {
      cli.pipeline.eliminate_redundant_waits = true;
    } else if (std::strcmp(arg, "--validate") == 0) {
      cli.pipeline.validate = true;
    } else if (std::strcmp(arg, "--no-never-degrade-prefilter") == 0) {
      // A/B escape hatch: force the full list-build + unbounded simulate
      // fallback path (no analytic skip, no simulation cutoff). Output
      // must be byte-identical either way — tools/check.sh diffs the two.
      cli.pipeline.never_degrade_prefilter = false;
    } else if (std::strcmp(arg, "--no-validate") == 0) {
      cli.pipeline.validate = false;
    } else if (std::strcmp(arg, "--tolerance") == 0) {
      cli.pipeline.validate_tolerance = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--mutate") == 0) {
      cli.mutate = parse_mutation(next_arg(argc, argv, i));
      if (!cli.mutate.has_value())
        usage("unknown mutation (hoist-send | sink-wait | drop-arc)");
    } else if (std::strcmp(arg, "--jobs") == 0) {
      cli.jobs = std::atoi(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      cli.pipeline.cache_dir = next_arg(argc, argv, i);
    } else if (std::strcmp(arg, "--cache-bytes") == 0) {
      cli.pipeline.cache_max_bytes = std::atoll(next_arg(argc, argv, i));
      if (cli.pipeline.cache_max_bytes < 0)
        usage("--cache-bytes must be non-negative");
    } else if (std::strcmp(arg, "--remote") == 0) {
      cli.remote_socket = next_arg(argc, argv, i);
    } else if (std::strcmp(arg, "--io-timeout-ms") == 0) {
      cli.io_timeout_ms = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      cli.deadline_ms = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--retries") == 0) {
      cli.retries = std::atoi(next_arg(argc, argv, i));
      if (cli.retries < 1) usage("--retries must be at least 1");
    } else if (std::strcmp(arg, "--retry-backoff-ms") == 0) {
      cli.retry_backoff_ms = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--fallback-local") == 0) {
      cli.fallback_local = true;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      cli.trace_out = next_arg(argc, argv, i);
    } else if (std::strcmp(arg, "--execute") == 0) {
      cli.execute = true;
    } else if (std::strcmp(arg, "--execute-threads") == 0) {
      cli.execute = true;
      cli.execute_threads = std::atoi(next_arg(argc, argv, i));
      if (cli.execute_threads < 1)
        usage("--execute-threads must be positive");
    } else if (std::strcmp(arg, "--execute-corrupt") == 0) {
      cli.execute = true;
      cli.execute_corrupt = true;
    } else if (std::strcmp(arg, "--dump") == 0) {
      cli.dumps.insert(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--list-benchmarks") == 0) {
      cli.run_suite = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(nullptr);
    } else if (arg[0] == '-') {
      usage((std::string("unknown option ") + arg).c_str());
    } else {
      cli.files.emplace_back(arg);
    }
  }
  if (!machine_text.empty()) {
    // The declarative form describes the whole machine; mixing it with
    // the legacy shorthand flags would leave the precedence ambiguous.
    if (width_or_fus_given)
      usage("--machine replaces --width/--fus; give one or the other");
    if (machine_text[0] == '@') {
      std::ifstream in(machine_text.substr(1));
      if (!in)
        usage(("cannot read machine file " + machine_text.substr(1)).c_str());
      std::ostringstream text;
      text << in.rdbuf();
      machine_text = text.str();
    }
    if (Status status =
            parse_machine_desc(machine_text, &cli.pipeline.machine);
        !status.ok()) {
      usage(status.message.c_str());
    }
  } else {
    if (width < 1 || fus < 1) usage("width and fus must be positive");
    cli.pipeline.machine = machines::paper(width, fus);
  }
  if (cli.files.empty() && !cli.run_suite) usage("no input files");
  return cli;
}

/// Renders a deliberately broken schedule's detection report: applies
/// the mutation, re-simulates, and runs both the static validator and a
/// seeded fault campaign against it.
void render_mutation(std::string& out, const LoopReport& report,
                     const CliOptions& cli, Status& status) {
  LoopReport mutated = report;
  if (!apply_schedule_mutation(*cli.mutate, mutated.tac, mutated.dfg,
                               mutated.schedule, cli.pipeline.machine)) {
    appendf(out, "  mutation %s: loop has no synchronization to break\n",
            mutation_name(*cli.mutate));
    return;
  }
  SimOptions sim_options;
  sim_options.iterations = cli.pipeline.resolved_iterations(report.loop);
  sim_options.processors = cli.pipeline.processors;
  mutated.sim = simulate(mutated.tac, *mutated.dfg, mutated.schedule,
                         cli.pipeline.machine, sim_options);
  const std::vector<std::string> validator =
      validate_pipeline(mutated, cli.pipeline);
  std::vector<Dependence> carried;
  for (const auto& dep : mutated.deps.deps)
    if (dep.loop_carried()) carried.push_back(dep);
  const FaultCampaign campaign = run_fault_campaign(
      mutated.tac, *mutated.dfg, mutated.schedule, cli.pipeline.machine,
      sim_options, carried, FaultPlan::adversarial(1), 20);
  appendf(out,
          "  mutation %s: validator found %zu violation(s), fault campaign "
          "%d/%d dirty trials\n",
          mutation_name(*cli.mutate), validator.size(),
          campaign.dirty_trials, campaign.trials + 1);
  for (std::size_t i = 0; i < validator.size() && i < 3; ++i)
    appendf(out, "    validator: %s\n", validator[i].c_str());
  for (const auto& msg : campaign.sample)
    appendf(out, "    oracle: %s\n", msg.c_str());
  if (!validator.empty() || campaign.detected()) {
    status = Status::error(StatusCode::kValidation, "mutate",
                           "mutation " +
                               std::string(mutation_name(*cli.mutate)) +
                               " detected");
  } else {
    appendf(out, "    NOT DETECTED\n");
  }
}

/// Routes one compile through the CompileRequest/CompileResult facade
/// and restores the old throwing surface the renderer is written
/// against: a compile that produced no report (no DFG) re-raises its
/// structured status, while a report that merely failed validation is
/// returned for rendering, exactly as the virtual compile() behaves.
LoopReport compile_via(LoopCompiler& compiler, const Loop& loop,
                       const PipelineOptions& options) {
  CompileResult compiled = compiler.compile(CompileRequest{loop, options});
  if (!compiled.report.dfg.has_value() && !compiled.ok())
    throw StatusError(compiled.report.status);
  return std::move(compiled.report);
}

/// compare_schedulers with both runs routed through `compiler`, so
/// --compare hits the same caches / daemon as plain runs.
SchedulerComparison compare_schedulers_via(LoopCompiler& compiler,
                                           const Loop& loop,
                                           const PipelineOptions& base) {
  SchedulerComparison out;
  PipelineOptions options = base;
  options.scheduler = SchedulerKind::kList;
  out.baseline = compile_via(compiler, loop, options);
  options.scheduler = SchedulerKind::kSyncAware;
  out.improved = compile_via(compiler, loop, options);
  return out;
}

std::string render_loop(const PreLoop& pre, const CliOptions& cli,
                        LoopCompiler& compiler, Status& status) {
  std::string out;
  RestructureResult restructured;
  {
    Tracer::Span span = Tracer::begin(cli.pipeline.tracer, "restructure");
    if (span) span.arg("loop", pre.name);
    try {
      restructured = restructure_or_throw(pre);
    } catch (const SbmpError& e) {
      throw StatusError(
          Status::error(StatusCode::kInput, "restructure", e.what()));
    }
  }
  const Loop& loop = restructured.loop;
  const DepAnalysis deps = analyze_dependences(loop);

  appendf(out, "loop %s: %s",
          loop.name.empty() ? "<unnamed>" : loop.name.c_str(),
          doacross_types_to_string(classify_doacross(restructured, deps))
              .c_str());
  for (const auto& note : restructured.notes)
    appendf(out, "\n  %s", note.to_string().c_str());
  appendf(out, "\n");

  if (deps.is_doall()) {
    appendf(out, "  Doall: no synchronization needed\n\n");
    return out;
  }
  if (!deps.is_synchronizable()) {
    appendf(out, "  irregular carried dependences: loop must serialize\n\n");
    return out;
  }

  const LoopReport report = compile_via(compiler, loop, cli.pipeline);
  status = report.status;
  if (cli.dump("sync"))
    appendf(out, "%s", report.synced.to_string().c_str());
  if (cli.dump("tac"))
    appendf(out, "%s", report.tac.to_string().c_str());
  if (cli.dump("dfg")) {
    for (int c = 0; c < report.dfg->num_components(); ++c) {
      appendf(out, "  component %d (%s):", c,
              component_kind_name(report.dfg->component_kind(c)));
      for (const int id : report.dfg->component_members(c))
        appendf(out, " %d", id);
      appendf(out, "\n");
    }
  }
  if (cli.dump("dot"))
    appendf(out, "%s", dfg_to_dot(report.tac, *report.dfg).c_str());
  if (cli.dump("schedule"))
    appendf(out, "%s", report.schedule
                           .to_string(report.tac,
                                      cli.pipeline.machine.issue_width)
                           .c_str());
  if (cli.dump("trace")) {
    SimOptions sim_options;
    sim_options.iterations = cli.pipeline.resolved_iterations(loop);
    sim_options.processors = cli.pipeline.processors;
    appendf(out, "%s", trace_to_string(report.tac, *report.dfg,
                                       report.schedule, cli.pipeline.machine,
                                       sim_options)
                           .c_str());
  }
  if (cli.dump("stats")) {
    appendf(out, "  %s\n",
            compute_schedule_stats(report.tac, *report.dfg, report.schedule,
                                   cli.pipeline.machine)
                .to_string()
                .c_str());
  }

  if (cli.compare) {
    const SchedulerComparison cmp =
        compare_schedulers_via(compiler, loop, cli.pipeline);
    const std::optional<double> imp = cmp.improvement_opt();
    appendf(out, "  list %lld cycles, sync-aware %lld cycles (%s)\n",
            static_cast<long long>(cmp.baseline.parallel_time()),
            static_cast<long long>(cmp.improved.parallel_time()),
            imp.has_value() ? (format_fixed(*imp * 100.0, 2) + "%").c_str()
                            : "baseline failed");
  } else {
    appendf(out, "  %s, %s: %lld cycles (%d groups, %lld stall cycles)\n",
            scheduler_name(cli.pipeline.scheduler),
            cli.pipeline.machine.label().c_str(),
            static_cast<long long>(report.parallel_time()),
            report.schedule.length(),
            static_cast<long long>(report.sim.stall_cycles));
  }
  if (report.waits_eliminated > 0)
    appendf(out, "  redundant waits eliminated: %d\n",
            report.waits_eliminated);
  if (!report.valid()) {
    appendf(out, "  INVALID:\n");
    for (const auto& v : report.schedule_violations)
      appendf(out, "    schedule: %s\n", v.c_str());
    for (const auto& v : report.ordering_violations)
      appendf(out, "    ordering: %s\n", v.c_str());
    for (const auto& v : report.validation_violations)
      appendf(out, "    validate: %s\n", v.c_str());
  }
  if (cli.execute && report.dfg.has_value()) {
    const LoopExecutor executor(report);
    ExecOptions exec_options;
    exec_options.threads = cli.execute_threads;
    exec_options.iterations = cli.pipeline.resolved_iterations(loop);
    exec_options.corrupt_result = cli.execute_corrupt;
    const ExecResult executed = executor.run(exec_options);
    if (!executed.ok()) {
      appendf(out, "  execute: %s\n", executed.status.to_string().c_str());
      status = executed.status;
    } else {
      const ExecResult reference = executor.run_reference(exec_options);
      const Status verdict = LoopExecutor::verify(executed, reference);
      // Blocked-wait and wall-time counts are timing-dependent; they live
      // in the metrics registry and BENCH_exec.json, not here, so this
      // line is byte-identical across repeated runs.
      appendf(out,
              "  executed %lld iterations on %d thread(s): %lld sends, "
              "%lld waits, state %016llx — %s\n",
              static_cast<long long>(executed.stats.iterations),
              executed.stats.threads,
              static_cast<long long>(executed.stats.sends),
              static_cast<long long>(executed.stats.waits),
              static_cast<unsigned long long>(executed.fingerprint),
              verdict.ok() ? "matches the serial reference" : "DIVERGED");
      if (!verdict.ok()) {
        appendf(out, "    %s\n", verdict.to_string().c_str());
        status = verdict;
      }
    }
  }
  if (cli.mutate.has_value()) render_mutation(out, report, cli, status);
  appendf(out, "\n");
  return out;
}

int run(CliOptions cli) {
  StatusCode worst = StatusCode::kOk;

  // One process-wide tracer; null on PipelineOptions unless requested,
  // so the untraced run pays nothing.
  Tracer tracer;
  if (!cli.trace_out.empty()) cli.pipeline.tracer = &tracer;

  // Phase 1 (serial): parse every source and flatten the work list.
  // `banner` text precedes the loop's own output (suite headers).
  struct Item {
    std::string banner;
    std::optional<PreLoop> loop;
    std::string rendered;
    Status status;
  };
  std::vector<Item> items;
  const auto gather_source = [&](const std::string& label,
                                 const std::string& source,
                                 std::string banner) {
    Tracer::Span span = Tracer::begin(cli.pipeline.tracer, "frontend");
    if (span) span.arg("source", label);
    DiagEngine diags;
    const PreProgram program = parse_pre_program(source, diags);
    if (!diags.ok()) {
      std::fprintf(stderr, "%s:\n%s", label.c_str(), diags.render().c_str());
      worst = worst_code(worst, StatusCode::kInput);
      return;
    }
    for (const auto& pre : program.loops) {
      Item item;
      item.banner = std::move(banner);
      banner.clear();  // only before the source's first loop
      item.loop = pre;
      items.push_back(std::move(item));
    }
  };

  for (const auto& file : cli.files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "sbmpc: cannot open %s\n", file.c_str());
      worst = worst_code(worst, StatusCode::kInput);
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    gather_source(file, buffer.str(), "");
  }
  if (cli.run_suite) {
    for (const auto& bench : perfect_suite()) {
      std::string banner = "==== " + bench.name + " (" + bench.description +
                           ") ====\n";
      gather_source(bench.name, bench.source, std::move(banner));
    }
  }

  // Phase 2: render every loop report, fanned out over --jobs workers.
  // Each worker writes only its own item, so output assembly is
  // race-free and the printed order below never depends on job count.
  //
  // Every compile goes through one LoopCompiler: the in-memory
  // ResultCache as before, optionally backed by the persistent
  // --cache-dir store, or replaced wholesale by a --remote daemon. The
  // rendering code is shared, so all three transports print identical
  // bytes for identical inputs (tooling_test locks this in).
  ResultCache memory;
  std::unique_ptr<DiskCache> disk;
  std::unique_ptr<RemoteCompiler> remote;
  std::unique_ptr<CachingCompiler> local;
  std::unique_ptr<FallbackCompiler> degrading;
  LoopCompiler* compiler = nullptr;
  if (cli.remote_socket.empty() || cli.fallback_local) {
    if (!cli.pipeline.cache_dir.empty()) {
      disk = std::make_unique<DiskCache>(cli.pipeline.cache_dir,
                                         cli.pipeline.cache_max_bytes);
      if (!disk->init_status().ok())
        std::fprintf(stderr, "sbmpc: warning: schedule cache disabled: %s\n",
                     disk->init_status().to_string().c_str());
    }
    local = std::make_unique<CachingCompiler>(&memory, disk.get());
    compiler = local.get();
  }
  if (!cli.remote_socket.empty()) {
    RemoteOptions remote_options;
    remote_options.socket_path = cli.remote_socket;
    remote_options.io_timeout_ms = cli.io_timeout_ms;
    remote_options.deadline_ms = cli.deadline_ms;
    remote_options.retry.max_attempts = cli.retries;
    remote_options.retry.initial_backoff_ms = cli.retry_backoff_ms;
    remote = std::make_unique<RemoteCompiler>(std::move(remote_options));
    compiler = remote.get();
    if (cli.fallback_local) {
      // Graceful degradation: transient remote failures (after the
      // retry budget) compile locally through the same caches; output
      // bytes are identical by the byte-identity contract.
      degrading = std::make_unique<FallbackCompiler>(*remote, *local);
      compiler = degrading.get();
    }
  }
  parallel_for(cli.jobs, 0, static_cast<std::int64_t>(items.size()),
               [&](std::int64_t i) {
                 Item& item = items[static_cast<std::size_t>(i)];
                 try {
                   item.rendered =
                       render_loop(*item.loop, cli, *compiler, item.status);
                 } catch (const StatusError& e) {
                   item.status = e.status();
                 } catch (const SbmpError& e) {
                   item.status = Status::error(StatusCode::kInternal,
                                               "pipeline", e.what());
                 }
               });

  // Phase 3 (serial): print every report in input order, rendering each
  // loop's diagnostic where its report would have been — no failure
  // aborts the listing or suppresses a later loop's output; the process
  // exit code is the worst status seen across all inputs.
  for (const auto& item : items) {
    if (!item.banner.empty()) std::printf("%s", item.banner.c_str());
    std::printf("%s", item.rendered.c_str());
    if (!item.status.ok()) {
      if (item.rendered.empty())
        std::fprintf(stderr, "sbmpc: %s\n", item.status.to_string().c_str());
      worst = worst_code(worst, item.status.code);
    }
  }

  if (degrading != nullptr && degrading->fallbacks() > 0) {
    // Degradation is success with a footnote, never a silent condition:
    // the operator learns the daemon misbehaved even though every
    // report still rendered (and the exit code stays 0).
    std::fprintf(stderr,
                 "sbmpc: warning: %lld compile(s) fell back to local "
                 "execution (daemon unavailable%s)\n",
                 static_cast<long long>(degrading->fallbacks()),
                 degrading->breaker_open() ? "; circuit breaker open" : "");
  }

  if (!cli.trace_out.empty()) {
    if (Status s = tracer.write_chrome_json(cli.trace_out); !s.ok()) {
      std::fprintf(stderr, "sbmpc: %s\n", s.to_string().c_str());
      worst = worst_code(worst, s.code);
    }
  }
  return exit_code(worst);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_cli(argc, argv));
  } catch (const StatusError& e) {
    std::fprintf(stderr, "sbmpc: %s\n", e.status().to_string().c_str());
    return exit_code(e.status().code);
  } catch (const SbmpError& e) {
    std::fprintf(stderr, "sbmpc: %s\n", e.what());
    return exit_code(StatusCode::kInternal);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sbmpc: internal error: %s\n", e.what());
    return exit_code(StatusCode::kInternal);
  }
}
