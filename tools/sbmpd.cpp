// sbmpd — schedule-serving daemon.
//
// Listens on a Unix-domain socket and answers framed compile requests
// (see src/serve/include/sbmp/serve/protocol.h and docs/serving.md) with
// the same LoopReport artifacts the disk cache stores. `sbmpc --remote
// <socket>` is the matching client and prints byte-identical reports to
// a local run.
//
//   sbmpd --socket PATH [--jobs N] [--cache-dir DIR] [--cache-bytes N]
//         [--metrics-dump]
//
// Options:
//   --socket PATH      Unix-domain socket to listen on (required; a
//                      stale socket file from a dead daemon is replaced)
//   --jobs N           worker threads for batch compiles inside the
//                      serving core (0 = hardware threads)
//   --cache-dir DIR    persistent schedule cache shared with sbmpc
//   --cache-bytes N    size cap of the persistent cache (default 256 MiB)
//   --metrics-dump     on drain, print the full metrics registry to
//                      stdout in Prometheus text exposition format
//                      (cache hit/miss counters, request counts, and the
//                      per-phase compile latency histograms)
//
// Introspection: a kStatRequest frame answers with a versioned
// StatSnapshot (server tallies + the same metrics the Prometheus dump
// renders); see protocol.h and docs/observability.md.
//
// Shutdown: SIGTERM or SIGINT drains gracefully — the listener closes
// immediately, every in-flight request runs to completion and its
// response is still delivered, idle connections are hung up, and the
// daemon exits 0 after printing its serving statistics (and, with
// --metrics-dump, the Prometheus dump).
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sbmp/core/pipeline.h"
#include "sbmp/obs/metrics.h"
#include "sbmp/serve/codec.h"
#include "sbmp/serve/protocol.h"
#include "sbmp/serve/server.h"
#include "sbmp/support/status.h"

namespace {

using namespace sbmp;

volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;  ///< set before handlers are installed

/// Only async-signal-safe work: raise the flag and close the listener so
/// the accept loop wakes up. Everything else happens on the main thread.
void on_signal(int) {
  g_stop = 1;
  if (g_listen_fd >= 0) ::close(g_listen_fd);
}

/// Open client connections. Threads close their fd under the same mutex
/// the drain uses for shutdown(2), so a drained fd is always still a
/// socket owned by this table.
std::mutex g_conn_mu;
std::set<int> g_conns;

void register_conn(int fd) {
  std::lock_guard<std::mutex> lock(g_conn_mu);
  g_conns.insert(fd);
}

void close_conn(int fd) {
  std::lock_guard<std::mutex> lock(g_conn_mu);
  g_conns.erase(fd);
  ::close(fd);
}

/// Hangs up the read side of every open connection: a client mid-request
/// still receives its response, the next read sees EOF and the handler
/// thread exits.
void drain_conns() {
  std::lock_guard<std::mutex> lock(g_conn_mu);
  for (const int fd : g_conns) ::shutdown(fd, SHUT_RD);
}

[[noreturn]] void usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "sbmpd: %s\n", message);
  std::fprintf(stderr,
               "usage: sbmpd --socket PATH [--jobs N] [--cache-dir DIR]\n"
               "             [--cache-bytes N] [--metrics-dump]\n");
  std::exit(exit_code(StatusCode::kUsage));
}

const char* next_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage("missing option value");
  return argv[++i];
}

/// Answers one compile request; never throws. Any failure — malformed
/// request, unparsable loop, pipeline refusal — travels back as the
/// response status, exactly what a local run_pipeline would have thrown.
std::string handle_compile(ScheduleServer& server, const std::string& payload) {
  Histogram* latency = server.metrics().histogram(
      "sbmp_server_request_ns", "", phase_latency_bounds_ns());
  const auto t0 = std::chrono::steady_clock::now();
  std::string options_payload;
  std::string loop_source;
  Status status = decode_compile_request(payload, &options_payload,
                                         &loop_source);
  PipelineOptions options;
  if (status.ok()) status = decode_pipeline_options(options_payload, &options);
  // Observability hooks are process-local pointers, never wire fields:
  // attach this daemon's registry so remote compiles feed the same
  // per-phase latency histograms as everything else in the process.
  options.metrics = &server.metrics();
  const auto observe = [&] {
    latency->observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  };
  if (status.ok()) {
    try {
      const Loop loop = parse_single_loop_or_throw(loop_source);
      const LoopReport report = server.compile(loop, options);
      std::string response = encode_compile_response(
          Status::okay(),
          encode_loop_report(report, schedule_fingerprint(loop, options)));
      observe();
      return response;
    } catch (const StatusError& e) {
      status = e.status();
    } catch (const SbmpError& e) {
      status = Status::error(StatusCode::kInput, "parse", e.what());
    } catch (const std::exception& e) {
      status = Status::error(StatusCode::kInternal, "daemon", e.what());
    }
  }
  observe();
  return encode_compile_response(status, "");
}

/// One session: frames in, frames out, until the peer hangs up or
/// misbehaves. A protocol error ends the session (the peer is broken;
/// there is no way to resynchronize a length-prefixed stream).
void serve_connection(ScheduleServer& server, int fd) {
  register_conn(fd);
  for (;;) {
    Frame frame;
    if (Status s = read_frame(fd, &frame); !s.ok()) break;
    if (frame.type == FrameType::kPing) {
      if (Status s = write_frame(fd, FrameType::kPong, ""); !s.ok()) break;
      continue;
    }
    if (frame.type == FrameType::kStatRequest) {
      const std::string snapshot =
          encode_stat_snapshot(server.stat_snapshot());
      if (Status s = write_frame(fd, FrameType::kStatResponse, snapshot);
          !s.ok())
        break;
      continue;
    }
    if (frame.type != FrameType::kCompileRequest) break;
    const std::string response = handle_compile(server, frame.payload);
    if (Status s = write_frame(fd, FrameType::kCompileResponse, response);
        !s.ok())
      break;
  }
  close_conn(fd);
}

int run(int argc, char** argv) {
  std::string socket_path;
  ServerOptions options;
  bool metrics_dump = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--socket") == 0) {
      socket_path = next_arg(argc, argv, i);
    } else if (std::strcmp(arg, "--metrics-dump") == 0) {
      metrics_dump = true;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      options.jobs = std::atoi(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      options.cache_dir = next_arg(argc, argv, i);
    } else if (std::strcmp(arg, "--cache-bytes") == 0) {
      options.cache_max_bytes = std::atoll(next_arg(argc, argv, i));
      if (options.cache_max_bytes < 0)
        usage("--cache-bytes must be non-negative");
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(nullptr);
    } else {
      usage((std::string("unknown option ") + arg).c_str());
    }
  }
  if (socket_path.empty()) usage("--socket is required");

  ScheduleServer server(options);
  if (server.disk_cache() != nullptr &&
      !server.disk_cache()->init_status().ok())
    std::fprintf(stderr, "sbmpd: warning: schedule cache disabled: %s\n",
                 server.disk_cache()->init_status().to_string().c_str());

  if (Status s = listen_unix(socket_path, &g_listen_fd); !s.ok()) {
    std::fprintf(stderr, "sbmpd: %s\n", s.to_string().c_str());
    return exit_code(s.code);
  }

  // A client that disconnects mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa{};
  sa.sa_handler = on_signal;  // no SA_RESTART: accept must see EINTR
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::fprintf(stderr, "sbmpd: listening on %s (jobs=%d, cache=%s)\n",
               socket_path.c_str(), options.jobs,
               options.cache_dir.empty() ? "<memory>"
                                         : options.cache_dir.c_str());

  std::vector<std::thread> handlers;
  while (g_stop == 0) {
    const int fd = ::accept(g_listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop != 0) break;
      if (errno == EINTR) continue;
      std::fprintf(stderr, "sbmpd: accept failed: %s\n",
                   std::strerror(errno));
      break;
    }
    handlers.emplace_back(
        [&server, fd] { serve_connection(server, fd); });
  }

  // Graceful drain: stop reading, finish what is in flight, then leave.
  drain_conns();
  for (auto& handler : handlers) handler.join();
  ::unlink(socket_path.c_str());

  const ServerStats stats = server.stats();
  std::fprintf(stderr,
               "sbmpd: drained: %lld requests, %lld compiles, %lld memory "
               "hits, %lld disk hits, %lld single-flight joins, %lld corrupt "
               "entries\n",
               static_cast<long long>(stats.requests),
               static_cast<long long>(stats.compiles),
               static_cast<long long>(stats.memory_hits),
               static_cast<long long>(stats.disk_hits),
               static_cast<long long>(stats.singleflight_joins),
               static_cast<long long>(stats.corrupt_entries));
  if (metrics_dump)
    std::fputs(server.metrics().snapshot().to_prometheus().c_str(), stdout);
  return exit_code(StatusCode::kOk);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const StatusError& e) {
    std::fprintf(stderr, "sbmpd: %s\n", e.status().to_string().c_str());
    return exit_code(e.status().code);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sbmpd: internal error: %s\n", e.what());
    return exit_code(StatusCode::kInternal);
  }
}
