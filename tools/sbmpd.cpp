// sbmpd — schedule-serving daemon.
//
// Listens on a Unix-domain socket and answers framed compile requests
// (see src/serve/include/sbmp/serve/protocol.h and docs/serving.md) with
// the same LoopReport artifacts the disk cache stores. `sbmpc --remote
// <socket>` is the matching client and prints byte-identical reports to
// a local run.
//
//   sbmpd --socket PATH [--jobs N] [--cache-dir DIR] [--cache-bytes N]
//         [--io-timeout-ms N] [--idle-timeout-ms N]
//         [--max-inflight N] [--max-queue N] [--queue-timeout-ms N]
//         [--max-conns N] [--max-requests-per-conn N] [--metrics-dump]
//
// Options:
//   --socket PATH      Unix-domain socket to listen on (required; a
//                      stale socket file from a dead daemon is replaced)
//   --jobs N           worker threads for batch compiles inside the
//                      serving core (0 = hardware threads)
//   --cache-dir DIR    persistent schedule cache shared with sbmpc
//   --cache-bytes N    size cap of the persistent cache (default 256 MiB)
//   --io-timeout-ms N  budget for moving one frame (default 10000; 0
//                      disables) — a client that stalls mid-frame or
//                      stops draining its responses is reaped, it never
//                      wedges a handler thread
//   --idle-timeout-ms N  reap connections silent between frames for this
//                      long (default 0 = keep idle connections)
//   --max-inflight N   concurrent compile requests (0 = unlimited);
//                      excess requests queue up to --max-queue deep
//   --max-queue N      waiters beyond inflight before shedding (default
//                      0 = shed immediately at capacity). The queue is
//                      LIFO with timeout: fresh requests ride the free
//                      slot, stale ones shed as kOverloaded
//   --queue-timeout-ms N  longest a request may queue (default 250)
//   --max-conns N      open connections cap (0 = unlimited): beyond it
//                      a connection is answered with one kOverloaded
//                      response and closed
//   --max-requests-per-conn N  close a session after N compile requests
//                      (0 = unlimited); clients reconnect, which lets
//                      --max-conns rebalance long-lived clients
//   --metrics-dump     on drain, print the full metrics registry to
//                      stdout in Prometheus text exposition format
//                      (cache hit/miss counters, request counts, and the
//                      per-phase compile latency histograms)
//
// Introspection: a kStatRequest frame answers with a versioned
// StatSnapshot (server tallies + the same metrics the Prometheus dump
// renders); see protocol.h and docs/observability.md.
//
// Overload behavior (docs/serving.md, "Failure modes & degradation"):
// every shed is a typed kOverloaded compile-response — clients honor it
// with backoff — and every refusal path is bounded, so a saturated
// daemon degrades into fast refusals instead of a convoy of stuck
// clients.
//
// Shutdown: SIGTERM or SIGINT drains gracefully — the listener closes
// immediately, every in-flight request runs to completion and its
// response is still delivered, idle connections are hung up, and the
// daemon exits 0 after printing its serving statistics (and, with
// --metrics-dump, the Prometheus dump).
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "sbmp/obs/metrics.h"
#include "sbmp/serve/admission.h"
#include "sbmp/serve/protocol.h"
#include "sbmp/serve/server.h"
#include "sbmp/serve/session.h"
#include "sbmp/serve/transport.h"
#include "sbmp/support/status.h"

namespace {

using namespace sbmp;

volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;  ///< set before handlers are installed

/// Only async-signal-safe work: raise the flag and close the listener so
/// the accept loop wakes up. Everything else happens on the main thread.
void on_signal(int) {
  g_stop = 1;
  if (g_listen_fd >= 0) ::close(g_listen_fd);
}

/// Open client connections. Threads close their fd under the same mutex
/// the drain uses for shutdown(2), so a drained fd is always still a
/// socket owned by this table. The active count replaces joinable
/// thread handles: handler threads are detached (a long-lived daemon
/// must not accumulate a handle per connection ever served), and the
/// drain waits on the count instead.
std::mutex g_conn_mu;
std::condition_variable g_conn_cv;
std::set<int> g_conns;
int g_active_handlers = 0;

int register_conn(int fd) {
  std::lock_guard<std::mutex> lock(g_conn_mu);
  g_conns.insert(fd);
  ++g_active_handlers;
  return static_cast<int>(g_conns.size());
}

void close_conn(int fd) {
  std::lock_guard<std::mutex> lock(g_conn_mu);
  g_conns.erase(fd);
  ::close(fd);
}

void handler_done() {
  std::lock_guard<std::mutex> lock(g_conn_mu);
  --g_active_handlers;
  g_conn_cv.notify_all();
}

[[nodiscard]] int open_conns() {
  std::lock_guard<std::mutex> lock(g_conn_mu);
  return static_cast<int>(g_conns.size());
}

/// Hangs up the read side of every open connection: a client mid-request
/// still receives its response, the next read sees EOF and the handler
/// thread exits. Then waits for every handler to finish.
void drain_conns() {
  std::unique_lock<std::mutex> lock(g_conn_mu);
  for (const int fd : g_conns) ::shutdown(fd, SHUT_RD);
  g_conn_cv.wait(lock, [] { return g_active_handlers == 0; });
}

[[noreturn]] void usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "sbmpd: %s\n", message);
  std::fprintf(stderr,
               "usage: sbmpd --socket PATH [--jobs N] [--cache-dir DIR]\n"
               "             [--cache-bytes N] [--io-timeout-ms N]\n"
               "             [--idle-timeout-ms N] [--max-inflight N]\n"
               "             [--max-queue N] [--queue-timeout-ms N]\n"
               "             [--max-conns N] [--max-requests-per-conn N]\n"
               "             [--metrics-dump]\n");
  std::exit(exit_code(StatusCode::kUsage));
}

const char* next_arg(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage("missing option value");
  return argv[++i];
}

/// One session over a freshly accepted socket; never throws.
void serve_connection(ScheduleServer& server, AdmissionController& admission,
                      const SessionLimits& limits, int fd) {
  FdTransport transport(fd);
  (void)serve_session(server, &admission, transport, limits);
  close_conn(fd);
  handler_done();
}

/// The --max-conns refusal: one typed kOverloaded response, then close.
/// The client's next read finds the refusal already buffered, so it
/// backs off instead of diagnosing a mystery hangup. The refusal runs
/// on the accept thread, so its budget is a small constant — never the
/// per-client io timeout: a connecting peer that refuses to drain even
/// this tiny frame must not hold up accepting everyone else.
void refuse_connection(ScheduleServer& server, int fd) {
  constexpr std::int64_t kRefusalBudgetMs = 100;
  server.metrics()
      .counter("sbmp_serve_outcomes_total", "outcome=\"conn_refused\"")
      ->inc();
  const Status s = Status::error(StatusCode::kOverloaded, "admission",
                                 "daemon at its connection cap");
  FdTransport transport(fd);
  (void)write_frame(transport, FrameType::kCompileResponse,
                    encode_compile_response(s, ""),
                    Deadline::after_ms(kRefusalBudgetMs));
  ::close(fd);
}

int run(int argc, char** argv) {
  std::string socket_path;
  ServerOptions options;
  AdmissionOptions admission_options;
  SessionLimits limits;
  limits.io_timeout_ms = 10000;
  std::int64_t max_conns = 0;
  bool metrics_dump = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--socket") == 0) {
      socket_path = next_arg(argc, argv, i);
    } else if (std::strcmp(arg, "--metrics-dump") == 0) {
      metrics_dump = true;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      options.jobs = std::atoi(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      options.cache_dir = next_arg(argc, argv, i);
    } else if (std::strcmp(arg, "--cache-bytes") == 0) {
      options.cache_max_bytes = std::atoll(next_arg(argc, argv, i));
      if (options.cache_max_bytes < 0)
        usage("--cache-bytes must be non-negative");
    } else if (std::strcmp(arg, "--io-timeout-ms") == 0) {
      limits.io_timeout_ms = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--idle-timeout-ms") == 0) {
      limits.idle_timeout_ms = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--max-inflight") == 0) {
      admission_options.max_inflight = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--max-queue") == 0) {
      admission_options.max_queue = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--queue-timeout-ms") == 0) {
      admission_options.queue_timeout_ms = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--max-conns") == 0) {
      max_conns = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--max-requests-per-conn") == 0) {
      limits.max_requests = std::atoll(next_arg(argc, argv, i));
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(nullptr);
    } else {
      usage((std::string("unknown option ") + arg).c_str());
    }
  }
  if (socket_path.empty()) usage("--socket is required");

  ScheduleServer server(options);
  AdmissionController admission(admission_options);
  if (server.disk_cache() != nullptr &&
      !server.disk_cache()->init_status().ok())
    std::fprintf(stderr, "sbmpd: warning: schedule cache disabled: %s\n",
                 server.disk_cache()->init_status().to_string().c_str());

  if (Status s = listen_unix(socket_path, &g_listen_fd); !s.ok()) {
    std::fprintf(stderr, "sbmpd: %s\n", s.to_string().c_str());
    return exit_code(s.code);
  }

  // Belt and braces: every frame write already uses MSG_NOSIGNAL, but a
  // client that disconnects mid-response must not kill the daemon even
  // through a code path that missed it.
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa{};
  sa.sa_handler = on_signal;  // no SA_RESTART: accept must see EINTR
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::fprintf(stderr, "sbmpd: listening on %s (jobs=%d, cache=%s)\n",
               socket_path.c_str(), options.jobs,
               options.cache_dir.empty() ? "<memory>"
                                         : options.cache_dir.c_str());

  while (g_stop == 0) {
    const int fd = ::accept(g_listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop != 0) break;
      if (errno == EINTR) continue;
      std::fprintf(stderr, "sbmpd: accept failed: %s\n",
                   std::strerror(errno));
      break;
    }
    if (max_conns > 0 && open_conns() >= max_conns) {
      refuse_connection(server, fd);
      continue;
    }
    register_conn(fd);
    std::thread([&server, &admission, limits, fd] {
      serve_connection(server, admission, limits, fd);
    }).detach();
  }

  // Graceful drain: stop reading, finish what is in flight, then leave.
  drain_conns();
  ::unlink(socket_path.c_str());

  const ServerStats stats = server.stats();
  const AdmissionController::Counters admitted = admission.counters();
  std::fprintf(stderr,
               "sbmpd: drained: %lld requests, %lld compiles, %lld memory "
               "hits, %lld disk hits, %lld single-flight joins, %lld corrupt "
               "entries, %lld queued, %lld shed\n",
               static_cast<long long>(stats.requests),
               static_cast<long long>(stats.compiles),
               static_cast<long long>(stats.memory_hits),
               static_cast<long long>(stats.disk_hits),
               static_cast<long long>(stats.singleflight_joins),
               static_cast<long long>(stats.corrupt_entries),
               static_cast<long long>(admitted.queued),
               static_cast<long long>(admitted.shed_queue_full +
                                      admitted.shed_timeout));
  if (metrics_dump)
    std::fputs(server.metrics().snapshot().to_prometheus().c_str(), stdout);
  return exit_code(StatusCode::kOk);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const StatusError& e) {
    std::fprintf(stderr, "sbmpd: %s\n", e.status().to_string().c_str());
    return exit_code(e.status().code);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sbmpd: internal error: %s\n", e.what());
    return exit_code(StatusCode::kInternal);
  }
}
